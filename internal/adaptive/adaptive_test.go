package adaptive

import (
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/recovery"
	"ellog/internal/sim"
)

// buildRun assembles a paper-style run with the controller attached.
func buildRun(t *testing.T, sizes []int, recirc bool, cfg Config) (*harness.Live, *Controller) {
	t.Helper()
	hc := harness.PaperDefaults(0.05)
	hc.LM = core.Params{Mode: core.ModeEphemeral, GenSizes: sizes, Recirculate: recirc}
	hc.Workload.Runtime = 200 * sim.Second
	hc.Workload.NumObjects = 1_000_000
	hc.Flush.NumObjects = 1_000_000
	live, err := harness.Build(hc)
	if err != nil {
		t.Fatal(err)
	}
	ctl := Attach(live.Setup.Eng, live.Setup.LM, cfg)
	return live, ctl
}

func TestGrowsUndersizedGenerations(t *testing.T) {
	// Start far too small: the workload needs roughly [18,16].
	live, ctl := buildRun(t, []int{6, 6}, false, Config{})
	eng := live.Setup.Eng
	eng.Run(200 * sim.Second)

	if ctl.Grown() == 0 {
		t.Fatalf("controller never grew undersized generations: %s", ctl)
	}
	sizes := ctl.Sizes()
	total := sizes[0] + sizes[1]
	t.Logf("converged to %v (total %d), grew %d, shrank %d", sizes, total, ctl.Grown(), ctl.Shrunk())
	// The true minimum is ~34; converged total must be sane, not runaway.
	if total < 20 || total > 90 {
		t.Fatalf("converged total %d implausible (true minimum ~34)", total)
	}
}

func TestNoNewKillsAfterConvergence(t *testing.T) {
	live, ctl := buildRun(t, []int{6, 6}, false, Config{})
	eng := live.Setup.Eng
	eng.Run(120 * sim.Second) // convergence phase
	killsAtConvergence := live.Gen.Stats().Killed
	if killsAtConvergence == 0 {
		t.Fatal("undersized start produced no kills — test premise broken")
	}
	eng.Run(200 * sim.Second) // steady phase
	if got := live.Gen.Stats().Killed; got != killsAtConvergence {
		t.Fatalf("%d kills after convergence (had %d at 120s): %s",
			got-killsAtConvergence, killsAtConvergence, ctl)
	}
}

func TestShrinksOversizedGenerations(t *testing.T) {
	live, ctl := buildRun(t, []int{64, 64}, false, Config{})
	eng := live.Setup.Eng
	eng.Run(200 * sim.Second)
	if ctl.Shrunk() == 0 {
		t.Fatalf("controller never shrank oversized generations: %s", ctl)
	}
	sizes := ctl.Sizes()
	total := sizes[0] + sizes[1]
	t.Logf("shrank 128 -> %v (total %d)", sizes, total)
	if total >= 100 {
		t.Fatalf("oversized log barely shrank: %d blocks", total)
	}
	if live.Gen.Stats().Killed != 0 {
		t.Fatalf("shrinking caused %d kills", live.Gen.Stats().Killed)
	}
}

func TestControllerKeepsRecoveryCorrect(t *testing.T) {
	// Resizing must never lose committed state: crash mid-run with the
	// controller active and verify recovery. (Recovery itself is tested in
	// internal/recovery; here the moving parts are the resizes.)
	live, _ := buildRun(t, []int{8, 6}, true, Config{Epoch: 2 * sim.Second})
	live.Setup.Eng.Run(77 * sim.Second)
	recovered, _, err := recovery.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionLog(t *testing.T) {
	live, ctl := buildRun(t, []int{6, 6}, false, Config{})
	live.Setup.Eng.Run(60 * sim.Second)
	if len(ctl.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}
	for _, d := range ctl.Decisions() {
		if d.Grown == 0 && d.Shrunk == 0 {
			t.Fatalf("empty decision recorded: %+v", d)
		}
		if d.Gen < 0 || d.Gen > 1 {
			t.Fatalf("decision for unknown generation: %+v", d)
		}
	}
	if ctl.String() == "" {
		t.Fatal("empty controller summary")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Epoch != 5*sim.Second || c.Margin != 3 || c.MaxShrink != 2 || c.GrowBoost != 2 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

// TestAdaptiveVsStaticSearch compares the controller's converged size with
// the offline search minimum: adaptive should land within a reasonable
// factor without any prior knowledge.
func TestAdaptiveVsStaticSearch(t *testing.T) {
	live, ctl := buildRun(t, []int{6, 6}, false, Config{})
	live.Setup.Eng.Run(200 * sim.Second)
	sizes := ctl.Sizes()
	total := sizes[0] + sizes[1]
	// Offline minimum at this workload is ~33-34 blocks.
	if total > 34*2 {
		t.Fatalf("adaptive total %d more than 2x the offline minimum", total)
	}
}
