package recovery

import (
	"math/rand/v2"
	"testing"

	"ellog/internal/blockdev"
	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

func paperishConfig(seed uint64, sizes []int, recirc bool) harness.Config {
	cfg := harness.PaperDefaults(0.05)
	cfg.Seed = seed
	cfg.LM = core.Params{Mode: core.ModeEphemeral, GenSizes: sizes, Recirculate: recirc}
	cfg.Workload.Runtime = 120 * sim.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	return cfg
}

// crashAndRecover runs the configuration up to crashAt, takes the crash
// image, recovers and verifies against the generator's oracle.
func crashAndRecover(t *testing.T, cfg harness.Config, crashAt sim.Time) Result {
	t.Helper()
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(crashAt) // the crash: simply stop the world
	recovered, res, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatalf("crash at %v: %v", crashAt, err)
	}
	if err := VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		t.Fatalf("crash at %v: %v\nLM: %s", crashAt, err, live.Setup.LM.Stats())
	}
	return res
}

func TestCrashRecoveryNoRecirculation(t *testing.T) {
	cfg := paperishConfig(1, []int{18, 16}, false)
	for _, at := range []sim.Time{
		100 * sim.Millisecond, // before anything is durable
		sim.Second,
		5 * sim.Second,
		30 * sim.Second,
		90 * sim.Second,
	} {
		crashAndRecover(t, cfg, at)
	}
}

func TestCrashRecoveryWithRecirculation(t *testing.T) {
	cfg := paperishConfig(2, []int{18, 10}, true)
	for _, at := range []sim.Time{
		2 * sim.Second,
		20 * sim.Second,
		60 * sim.Second,
		110 * sim.Second,
	} {
		res := crashAndRecover(t, cfg, at)
		if at > 30*sim.Second && res.BlocksRead == 0 {
			t.Fatalf("no blocks read at %v", at)
		}
	}
}

// TestCrashRecoveryProperty is the paper's central safety claim as a
// property: crash an EL log at a random instant and single-pass recovery
// restores exactly the durably committed state — even while records are
// being forwarded, recirculated, and force flushed under pressure.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	for i := 0; i < 12; i++ {
		seed := rng.Uint64()
		recirc := i%2 == 0
		sizes := []int{14 + rng.IntN(8), 8 + rng.IntN(10)}
		cfg := paperishConfig(seed, sizes, recirc)
		cfg.Workload.Runtime = 60 * sim.Second
		crashAt := sim.Time(rng.Int64N(int64(50 * sim.Second)))
		crashAndRecover(t, cfg, crashAt)
	}
}

// TestCrashRecoveryUnderKillPressure uses undersized generations: some
// transactions get killed, and recovery must restore exactly the surviving
// committed state.
func TestCrashRecoveryUnderKillPressure(t *testing.T) {
	cfg := paperishConfig(3, []int{6, 4}, true)
	cfg.Workload.Runtime = 40 * sim.Second
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(35 * sim.Second)
	if live.Gen.Stats().Killed == 0 {
		t.Fatal("test needs kill pressure but nothing was killed")
	}
	recovered, _, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryOfEmptyLog(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := blockdev.New(eng, sim.Millisecond)
	db := statedb.New()
	recovered, res, err := Recover(dev, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRead != 0 || res.Winners != 0 || recovered.Len() != 0 {
		t.Fatalf("empty log recovery: %+v", res)
	}
}

func TestRecoveryPreservesInputDB(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := blockdev.New(eng, sim.Millisecond)
	db := statedb.New()
	db.Apply(1, 5, 55, 1)
	recovered, _, err := Recover(dev, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	recovered.Apply(1, 9, 99, 1)
	if v, _ := db.Get(1); v.LSN != 5 {
		t.Fatal("Recover mutated the input database")
	}
}

func TestRecoverySkipsLosers(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := blockdev.New(eng, sim.Millisecond)
	// Winner tx 1 (commit durable), loser tx 2 (no commit).
	blk := dev.Alloc(0)
	recs := []*logrec.Record{
		logrec.NewTxRecord(1, 0, logrec.KindBegin, 1, 8),
		logrec.NewDataRecord(2, 1, 1, 100, 100),
		logrec.NewTxRecord(3, 2, logrec.KindCommit, 1, 8),
		logrec.NewTxRecord(4, 3, logrec.KindBegin, 2, 8),
		logrec.NewDataRecord(5, 4, 2, 200, 100),
	}
	dev.Write(blk, logrec.EncodeBlock(recs), nil)
	eng.Run(sim.Second)
	recovered, res, err := Recover(dev, statedb.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winners != 1 || res.Losers != 1 {
		t.Fatalf("winners/losers = %d/%d, want 1/1", res.Winners, res.Losers)
	}
	if _, ok := recovered.Get(100); !ok {
		t.Fatal("winner's update not recovered")
	}
	if _, ok := recovered.Get(200); ok {
		t.Fatal("loser's update leaked into the database")
	}
}

func TestRecoveryPicksLatestCommittedVersion(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := blockdev.New(eng, sim.Millisecond)
	blk := dev.Alloc(0)
	// Two committed versions of object 7 plus one stale loser version.
	recs := []*logrec.Record{
		logrec.NewDataRecord(10, 0, 1, 7, 100),
		logrec.NewTxRecord(11, 1, logrec.KindCommit, 1, 8),
		logrec.NewDataRecord(20, 2, 2, 7, 100),
		logrec.NewTxRecord(21, 3, logrec.KindCommit, 2, 8),
		logrec.NewDataRecord(30, 4, 3, 7, 100), // tx 3 never commits
	}
	dev.Write(blk, logrec.EncodeBlock(recs), nil)
	eng.Run(sim.Second)
	recovered, _, err := Recover(dev, statedb.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := recovered.Get(7)
	if !ok || v.LSN != 20 {
		t.Fatalf("recovered version %+v, want LSN 20", v)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	cfg := paperishConfig(7, []int{18, 12}, true)
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(20 * sim.Second)
	r1, _, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Recover(live.Setup.Dev, r1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq, bad := r1.Equal(r2); !eq {
		t.Fatalf("second recovery changed state at object %d", bad)
	}
}

func TestRecoveryTimeTracksLogSize(t *testing.T) {
	// The paper's recovery argument: less log space means proportionally
	// faster recovery. A 34-block EL log must beat a 123-block FW log.
	small := crashAndRecoverBlocks(t, []int{18, 16})
	if small.EstimatedTime <= 0 {
		t.Fatal("no estimated recovery time")
	}
	perBlock := small.EstimatedTime / sim.Time(small.BlocksRead)
	if perBlock != DefaultBlockRead {
		t.Fatalf("per-block read %v, want %v", perBlock, DefaultBlockRead)
	}
	// 34 blocks at 15 ms each ~ 0.51 s: "recovery in less than a second
	// may be feasible".
	if small.EstimatedTime > sim.Second {
		t.Fatalf("EL log recovery estimate %v exceeds a second", small.EstimatedTime)
	}
}

func crashAndRecoverBlocks(t *testing.T, sizes []int) Result {
	t.Helper()
	cfg := paperishConfig(5, sizes, false)
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(60 * sim.Second)
	_, res, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorruptBlockSkippedAndCounted(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := blockdev.New(eng, sim.Millisecond)
	// One garbage block and one valid block: recovery must not abort on the
	// checksum failure — it counts the block as torn, salvages nothing from
	// it, and still recovers the valid block's committed update.
	bad := dev.Alloc(0)
	dev.Write(bad, []byte{1, 2, 3}, nil)
	good := dev.Alloc(0)
	recs := []*logrec.Record{
		logrec.NewDataRecord(2, 1, 1, 100, 100),
		logrec.NewTxRecord(3, 2, logrec.KindCommit, 1, 8),
	}
	dev.Write(good, logrec.EncodeBlock(recs), nil)
	eng.Run(sim.Second)
	recovered, res, err := Recover(dev, statedb.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TornBlocks != 1 || res.SalvagedRecs != 0 {
		t.Fatalf("torn=%d salvaged=%d, want 1/0", res.TornBlocks, res.SalvagedRecs)
	}
	if _, ok := recovered.Get(100); !ok {
		t.Fatal("valid block's update lost because a corrupt block was present")
	}
	if len(res.WinnerTxs) != 1 || res.WinnerTxs[0] != 1 {
		t.Fatalf("WinnerTxs = %v, want [1]", res.WinnerTxs)
	}
}

// A deliberately torn final block — a crash mid-write deposited only a
// prefix of the new bytes — recovers to its salvaged prefix: transactions
// whose COMMIT survived in the prefix win, a COMMIT in the lost suffix
// loses, and a bit flip inside the prefix discards from that record on.
func TestRecoveryOverTornFinalBlock(t *testing.T) {
	mk := func() (*sim.Engine, *blockdev.Device, blockdev.BlockID, []byte) {
		eng := sim.NewEngine(1, 2)
		dev := blockdev.New(eng, sim.Millisecond)
		blk := dev.Alloc(0)
		full := logrec.EncodeBlock([]*logrec.Record{
			logrec.NewDataRecord(2, 1, 1, 100, 100),
			logrec.NewTxRecord(3, 2, logrec.KindCommit, 1, 8),
			logrec.NewDataRecord(4, 3, 2, 200, 100),
			logrec.NewTxRecord(5, 4, logrec.KindCommit, 2, 8),
		})
		return eng, dev, blk, full
	}

	// Tear between tx 1's COMMIT and tx 2's records: issue the write and
	// tear it so only the first half reaches the platter.
	eng, dev, blk, full := mk()
	dev.Write(blk, full, nil)
	// The wire layout is a fixed header followed by four equal-size records;
	// cut mid-way through the third record so exactly tx 1's data and COMMIT
	// survive in the prefix.
	perRec := (len(full) - 8) / 4
	cut := 8 + 2*perRec + perRec/2
	frac := float64(cut) / float64(len(full))
	if id, ok := dev.TearOldestInFlight(frac); !ok || id != blk {
		t.Fatalf("tear failed: id=%d ok=%v", id, ok)
	}
	recovered, res, err := Recover(dev, statedb.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TornBlocks != 1 {
		t.Fatalf("TornBlocks = %d, want 1", res.TornBlocks)
	}
	if res.SalvagedRecs == 0 {
		t.Fatal("nothing salvaged from the torn block's prefix")
	}
	if _, ok := recovered.Get(100); !ok {
		t.Fatal("tx 1 committed in the salvaged prefix but its update was lost")
	}
	if _, ok := recovered.Get(200); ok {
		t.Fatal("tx 2's COMMIT was in the lost suffix but its update leaked")
	}
	_ = eng

	// A bit flip inside an otherwise-complete block: salvage stops at the
	// flipped record; everything before it survives.
	eng2, dev2, blk2, full2 := mk()
	dev2.Write(blk2, full2, nil)
	eng2.Run(sim.Second)
	raw := dev2.Read(blk2)
	raw[len(raw)-10] ^= 0x40 // clobber the last record
	recovered2, res2, err := Recover(dev2, statedb.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TornBlocks != 1 {
		t.Fatalf("TornBlocks = %d, want 1", res2.TornBlocks)
	}
	if _, ok := recovered2.Get(100); !ok {
		t.Fatal("corruption in a later record destroyed an earlier valid one")
	}
	if _, ok := recovered2.Get(200); ok {
		t.Fatal("tx 2 won although its COMMIT record was corrupted")
	}
}

func TestMismatchErrorFormatting(t *testing.T) {
	cases := []struct {
		err  *MismatchError
		want string
	}{
		{&MismatchError{Obj: 7, Want: 12, Missing: true},
			"recovery: committed update lost: object 7, want LSN 12"},
		{&MismatchError{Obj: 8, Got: 33, Extra: true},
			"recovery: uncommitted state leaked: object 8 at LSN 33"},
		{&MismatchError{Obj: 9, Want: 5, Got: 4},
			"recovery: object 9 recovered at LSN 4, committed LSN 5"},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.want {
			t.Errorf("Error() = %q, want %q", got, c.want)
		}
	}
}

func TestVerifyOracleDetectsDivergence(t *testing.T) {
	db := statedb.New()
	db.Apply(1, 10, 100, 1)
	if err := VerifyOracle(db, map[logrec.OID]logrec.LSN{1: 10}); err != nil {
		t.Fatalf("exact match rejected: %v", err)
	}
	if err := VerifyOracle(db, map[logrec.OID]logrec.LSN{1: 11}); err == nil {
		t.Fatal("wrong LSN accepted")
	}
	if err := VerifyOracle(db, map[logrec.OID]logrec.LSN{1: 10, 2: 5}); err == nil {
		t.Fatal("missing object accepted")
	}
	if err := VerifyOracle(db, map[logrec.OID]logrec.LSN{}); err == nil {
		t.Fatal("leaked object accepted")
	}
}

func TestSimulatedRecoveryTime(t *testing.T) {
	cfg := paperishConfig(9, []int{18, 16}, false)
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(60 * sim.Second)
	recovered, tr, err := SimulateRecovery(live.Setup.Dev, live.Setup.DB, TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
	if tr.Elapsed != tr.ReadTime+tr.RedoTime {
		t.Fatalf("elapsed %v != read %v + redo %v", tr.Elapsed, tr.ReadTime, tr.RedoTime)
	}
	// 34 blocks at 15 ms: the whole EL log reads in ~0.51 s — the paper's
	// "recovery in less than a second may be feasible".
	if tr.ReadTime != sim.Time(tr.BlocksRead)*DefaultBlockRead {
		t.Fatalf("read time %v for %d blocks", tr.ReadTime, tr.BlocksRead)
	}
	if tr.Elapsed > sim.Second {
		t.Fatalf("EL recovery took %v, want under a second", tr.Elapsed)
	}
	// Parallel log areas (one drive per generation) halve the read pass.
	_, tr2, err := SimulateRecovery(live.Setup.Dev, live.Setup.DB, TimedOptions{ReadParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.ReadTime >= tr.ReadTime {
		t.Fatalf("parallel read not faster: %v vs %v", tr2.ReadTime, tr.ReadTime)
	}
}

func TestSimulatedRecoveryScalesWithLogSize(t *testing.T) {
	run := func(sizes []int, mode core.Mode) TimedResult {
		cfg := paperishConfig(10, sizes, false)
		cfg.LM.Mode = mode
		live, err := harness.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		live.Setup.Eng.Run(60 * sim.Second)
		_, tr, err := SimulateRecovery(live.Setup.Dev, live.Setup.DB, TimedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	el := run([]int{18, 16}, core.ModeEphemeral)
	fw := run([]int{123}, core.ModeFirewall)
	// The paper's recovery claim quantified: the EL log reads ~3.6x faster.
	if fw.ReadTime < el.ReadTime*3 {
		t.Fatalf("FW recovery read %v not much slower than EL %v", fw.ReadTime, el.ReadTime)
	}
}

// TestCrashRecoveryWithSteal exercises the UNDO/REDO extension: with a
// steal policy, uncommitted updates reach the stable database before the
// crash, and recovery must roll every loser's version back to its
// before-image while still redoing all winners.
func TestCrashRecoveryWithSteal(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	sawUndo := false
	for i := 0; i < 10; i++ {
		cfg := paperishConfig(rng.Uint64(), []int{16 + rng.IntN(6), 8 + rng.IntN(8)}, i%2 == 0)
		cfg.LM.Steal = true
		cfg.Workload.Runtime = 60 * sim.Second
		live, err := harness.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		crashAt := sim.Time(5*sim.Second) + sim.Time(rng.Int64N(int64(45*sim.Second)))
		live.Setup.Eng.Run(crashAt)
		recovered, res, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
		if err != nil {
			t.Fatalf("crash at %v: %v", crashAt, err)
		}
		if err := VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
			t.Fatalf("steal crash at %v: %v", crashAt, err)
		}
		if res.Undone > 0 {
			sawUndo = true
		}
	}
	if !sawUndo {
		t.Fatal("no crash ever exercised the UNDO pass — steal not effective")
	}
}

// TestStealDirtyDatabaseAtCrash confirms the premise of the steal test
// above: the pre-recovery database really does contain uncommitted state.
func TestStealDirtyDatabaseAtCrash(t *testing.T) {
	cfg := paperishConfig(17, []int{18, 12}, true)
	cfg.LM.Steal = true
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(30 * sim.Second)
	stolen := 0
	live.Setup.DB.Range(func(oid logrec.OID, v statedb.Version) bool {
		if v.Stolen {
			stolen++
		}
		return true
	})
	if stolen == 0 {
		t.Fatal("no stolen versions in the database mid-run")
	}
	// And raw DB state must NOT match the oracle (that is recovery's job).
	if err := VerifyOracle(live.Setup.DB, live.Gen.Oracle()); err == nil {
		t.Fatal("database already clean at crash — steal test proves nothing")
	}
}
