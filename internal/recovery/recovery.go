// Package recovery implements crash recovery for an ephemeral log. The
// paper defers the algorithm to its companion report ([9], Keen, "Logging
// and Recovery in a Highly Concurrent Stable Object Store") but states the
// key properties: all log records are timestamped so the recovery manager
// can re-establish temporal order despite recirculation, and because EL
// keeps the log small enough to read entirely into main memory, "we can
// read the entire log into memory and perform recovery with a single pass"
// (section 4) — unlike the traditional two-pass (undo, redo) method.
//
// The single disk pass implemented here reads every durable block of the
// log area — including blocks the logging manager had logically freed but
// not yet overwritten, whose stale contents are harmless — into memory.
// Resolution is then pure computation: winners are transactions with a
// durable COMMIT record (REDO-only logging leaves nothing to undo), and
// for each object the highest-LSN data record written by a winner is
// applied to the stable database, which itself ignores anything older than
// what it already holds.
package recovery

import (
	"fmt"
	"sort"

	"ellog/internal/blockdev"
	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

// DefaultBlockRead is the modeled time to read one log block during
// recovery; symmetric with the paper's 15 ms write transfer. Sequential
// reading of a few dozen blocks at this rate supports the paper's
// "recovery in less than a second may be feasible".
const DefaultBlockRead = 15 * sim.Millisecond

// Result describes one recovery pass.
type Result struct {
	BlocksRead  int
	BytesRead   int
	RecordsRead int
	Winners     int // distinct committed transactions seen in the log
	Losers      int // distinct transactions seen without a durable COMMIT
	Applied     int // updates newer than the stable database
	Stale       int // updates the stable database already covered
	Undone      int // stolen loser versions rolled back (UNDO/REDO extension)
	// Torn-write detection (per-block and per-record checksums): a block
	// that fails its checksum is salvaged — the longest prefix of records
	// with valid checksums survives, the rest is discarded as the lost
	// suffix of a torn or corrupt write.
	TornBlocks   int // blocks whose checksum failed (torn or corrupt)
	SalvagedRecs int // records recovered from torn blocks' valid prefixes
	// WinnerTxs lists the committed transactions found in the log, in
	// ascending TxID order — crash-campaign harnesses compare it against
	// the set of acknowledged commits.
	WinnerTxs []logrec.TxID
	// InDoubt lists prepared transactions with no local decision, in
	// ascending TxID order: 2PC branches whose fate only the coordinator
	// shard's log can settle (commit if it holds a durable DECIDE,
	// presumed abort otherwise). Their updates are excluded from this
	// pass's redo; the resolution pass applies the committed ones.
	InDoubt []InDoubtTx
	// EstimatedTime models the sequential single-pass read of the log:
	// BlocksRead x the per-block read time.
	EstimatedTime sim.Time
}

// InDoubtWrite is one object update by an in-doubt prepared transaction —
// the branch's latest durable record for the object.
type InDoubtWrite struct {
	Obj logrec.OID
	LSN logrec.LSN
	Val uint64
}

// InDoubtTx is one prepared-but-undecided transaction surfaced by a
// shard's recovery pass. Writes holds the latest durable update per
// object, in ascending oid order, so resolution output is deterministic.
type InDoubtTx struct {
	Tx     logrec.TxID
	Writes []InDoubtWrite
}

// Image is a crash image of the log area: a single deterministic pass over
// every block that has durable contents, in allocation order. The simulated
// *blockdev.Device is one implementation; internal/realdev's on-disk file
// image is the other, which is how the same scan/salvage pass recovers real
// files.
type Image interface {
	RangeDurable(fn func(id blockdev.BlockID, gen int, data []byte) bool)
}

// Recover performs single-pass redo recovery: it reads the crash image
// from the log area and returns a recovered copy of the stable database
// (the input database is not modified).
func Recover(dev Image, db *statedb.DB, blockRead sim.Time) (*statedb.DB, Result, error) {
	if blockRead <= 0 {
		blockRead = DefaultBlockRead
	}
	var res Result

	winners := make(map[logrec.TxID]bool)
	prepared := make(map[logrec.TxID]bool)
	seen := make(map[logrec.TxID]bool)
	var data []*logrec.Record

	// The single pass over disk: everything lands in memory. A block that
	// fails its checksum — torn by a crash mid-write or silently corrupted —
	// is not trusted wholesale: its longest prefix of checksum-valid records
	// is salvaged and the rest discarded. A transaction whose COMMIT fell in
	// a discarded suffix simply has no durable commit and recovers as a
	// loser, which is exactly the group-commit contract: it was never
	// acknowledged (the block's completion never fired).
	dev.RangeDurable(func(id blockdev.BlockID, gen int, blk []byte) bool {
		res.BlocksRead++
		res.BytesRead += len(blk)
		recs, intact := logrec.SalvageBlock(blk)
		if !intact {
			res.TornBlocks++
			res.SalvagedRecs += len(recs)
		}
		for _, r := range recs {
			res.RecordsRead++
			seen[r.Tx] = true
			switch r.Kind {
			case logrec.KindCommit, logrec.KindDecide:
				// DECIDE is the coordinator shard's COMMIT: a durable one
				// commits the local branch (and, globally, the whole
				// cross-shard transaction — RecoverAll's resolution pass
				// consults it on behalf of the other shards).
				winners[r.Tx] = true
			case logrec.KindPrepare:
				prepared[r.Tx] = true
			case logrec.KindData:
				data = append(data, r)
			}
		}
		return true
	})
	res.Winners = len(winners)
	res.Losers = len(seen) - len(winners)
	res.WinnerTxs = make([]logrec.TxID, 0, len(winners))
	for tx := range winners {
		res.WinnerTxs = append(res.WinnerTxs, tx)
	}
	sort.Slice(res.WinnerTxs, func(i, j int) bool { return res.WinnerTxs[i] < res.WinnerTxs[j] })

	// In-memory resolution: redo each object's latest committed update.
	type upd struct {
		lsn logrec.LSN
		val uint64
		tx  logrec.TxID
	}
	winnerLatest := make(map[logrec.OID]upd)
	// loserRecs keeps one record per (object, loser transaction): its
	// before-image is the pre-transaction committed state, needed to UNDO
	// versions that a steal policy flushed before the crash. Every such
	// flushed-uncommitted record is non-garbage until its transaction
	// resolves, so the log is guaranteed to hold one.
	type objTx struct {
		obj logrec.OID
		tx  logrec.TxID
	}
	loserRecs := make(map[objTx]*logrec.Record)
	// inDoubtLatest tracks the latest update per object of each prepared-
	// but-undecided transaction; the resolution pass redoes the committed
	// ones, so this pass neither redoes nor undoes them beyond the stolen
	// rollback below (which a later resolution commit re-applies, its
	// record LSNs being newer than any before-image).
	inDoubtLatest := make(map[logrec.TxID]map[logrec.OID]upd)
	for _, r := range data {
		if !winners[r.Tx] {
			loserRecs[objTx{r.Obj, r.Tx}] = r
			if prepared[r.Tx] {
				w := inDoubtLatest[r.Tx]
				if w == nil {
					w = make(map[logrec.OID]upd)
					inDoubtLatest[r.Tx] = w
				}
				if cur, ok := w[r.Obj]; !ok || r.LSN > cur.lsn {
					w[r.Obj] = upd{lsn: r.LSN, val: r.Val, tx: r.Tx}
				}
			}
			continue // loser, in doubt, or still active at crash: no redo
		}
		if cur, ok := winnerLatest[r.Obj]; !ok || r.LSN > cur.lsn {
			winnerLatest[r.Obj] = upd{lsn: r.LSN, val: r.Val, tx: r.Tx}
		}
	}
	inDoubtTxs := make([]logrec.TxID, 0, len(prepared))
	for tx := range prepared {
		if !winners[tx] {
			inDoubtTxs = append(inDoubtTxs, tx)
		}
	}
	sort.Slice(inDoubtTxs, func(i, j int) bool { return inDoubtTxs[i] < inDoubtTxs[j] })
	res.InDoubt = make([]InDoubtTx, 0, len(inDoubtTxs))
	for _, tx := range inDoubtTxs {
		idt := InDoubtTx{Tx: tx}
		objs := make([]logrec.OID, 0, len(inDoubtLatest[tx]))
		for obj := range inDoubtLatest[tx] {
			objs = append(objs, obj)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		for _, obj := range objs {
			u := inDoubtLatest[tx][obj]
			idt.Writes = append(idt.Writes, InDoubtWrite{Obj: obj, LSN: u.lsn, Val: u.val})
		}
		res.InDoubt = append(res.InDoubt, idt)
	}
	recovered := db.Clone()
	// UNDO pass (steal extension): a version explicitly marked stolen was
	// flushed before its transaction committed. If the writer's COMMIT is
	// not in the log, the version is rolled back to the before-image
	// carried by the writer's log record; stolen records stay non-garbage
	// until commit-time cleaning, so that record is guaranteed readable.
	var undoErr error
	db.Range(func(obj logrec.OID, v statedb.Version) bool {
		if !v.Stolen || winners[v.Tx] {
			return true
		}
		r, ok := loserRecs[objTx{obj, v.Tx}]
		if !ok {
			undoErr = fmt.Errorf("recovery: stolen version of object %d (tx %d) has no log record to undo with", obj, v.Tx)
			return false
		}
		recovered.ForceSet(obj, statedb.Version{LSN: r.PrevLSN, Val: r.PrevVal})
		res.Undone++
		return true
	})
	if undoErr != nil {
		return nil, res, undoErr
	}
	// REDO pass.
	for obj, u := range winnerLatest {
		if recovered.Apply(obj, u.lsn, u.val, u.tx) {
			res.Applied++
		} else {
			res.Stale++
		}
	}
	res.EstimatedTime = sim.Time(res.BlocksRead) * blockRead
	return recovered, res, nil
}

// VerifyOracle checks a recovered database against ground truth: the
// latest durably-committed LSN per object (as tracked by the workload
// generator). It returns the first discrepancy, or nil if the recovered
// state is exactly the committed state.
func VerifyOracle(recovered *statedb.DB, oracle map[logrec.OID]logrec.LSN) error {
	for oid, lsn := range oracle {
		v, ok := recovered.Get(oid)
		if !ok {
			return &MismatchError{Obj: oid, Want: lsn, Got: 0, Missing: true}
		}
		if v.LSN != lsn {
			return &MismatchError{Obj: oid, Want: lsn, Got: v.LSN}
		}
	}
	var err error
	recovered.Range(func(oid logrec.OID, v statedb.Version) bool {
		want, ok := oracle[oid]
		if !ok || want != v.LSN {
			err = &MismatchError{Obj: oid, Want: want, Got: v.LSN, Extra: !ok}
			return false
		}
		return true
	})
	return err
}

// MismatchError reports a recovery discrepancy.
type MismatchError struct {
	Obj     logrec.OID
	Want    logrec.LSN
	Got     logrec.LSN
	Missing bool // object absent from the recovered database
	Extra   bool // object recovered but never durably committed
}

func (e *MismatchError) Error() string {
	switch {
	case e.Missing:
		return fmt.Sprintf("recovery: committed update lost: object %d, want LSN %d", e.Obj, e.Want)
	case e.Extra:
		return fmt.Sprintf("recovery: uncommitted state leaked: object %d at LSN %d", e.Obj, e.Got)
	default:
		return fmt.Sprintf("recovery: object %d recovered at LSN %d, committed LSN %d", e.Obj, e.Got, e.Want)
	}
}
