package recovery

import (
	"ellog/internal/blockdev"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

// TimedResult extends Result with the measured wall-clock (simulated) time
// of the recovery pass, rather than the static estimate.
type TimedResult struct {
	Result
	// Elapsed is the simulated time the recovery took: the read pass over
	// all durable blocks on readParallel spindles, plus the write-back of
	// redone updates to the stable database's drives.
	Elapsed sim.Time
	// ReadTime and RedoTime split the total.
	ReadTime sim.Time
	RedoTime sim.Time
}

// TimedOptions parameterizes the simulated recovery hardware.
type TimedOptions struct {
	// BlockRead is the sequential per-block read time (default 15 ms,
	// symmetric with the paper's write transfer).
	BlockRead sim.Time
	// ReadParallel is how many log areas can be read concurrently
	// (e.g. one per generation when they live on separate drives);
	// default 1.
	ReadParallel int
	// RedoWrite is the per-object write time for redone updates
	// (default 25 ms, the paper's flush transfer), spread over RedoDrives
	// (default 10).
	RedoWrite  sim.Time
	RedoDrives int
}

func (o TimedOptions) withDefaults() TimedOptions {
	if o.BlockRead <= 0 {
		o.BlockRead = DefaultBlockRead
	}
	if o.ReadParallel <= 0 {
		o.ReadParallel = 1
	}
	if o.RedoWrite <= 0 {
		o.RedoWrite = 25 * sim.Millisecond
	}
	if o.RedoDrives <= 0 {
		o.RedoDrives = 10
	}
	return o
}

// SimulateRecovery runs single-pass recovery and computes the time the
// pass would take on the modeled hardware: the sequential read of every
// durable log block, striped over ReadParallel areas (the slowest stripe
// bounds the pass), followed by the redone updates written back across
// RedoDrives. The paper's argument — a small log means sub-second
// recovery — becomes a number instead of a proportionality claim.
func SimulateRecovery(dev *blockdev.Device, db *statedb.DB, opt TimedOptions) (*statedb.DB, TimedResult, error) {
	opt = opt.withDefaults()
	recovered, res, err := Recover(dev, db, opt.BlockRead)
	if err != nil {
		return nil, TimedResult{Result: res}, err
	}
	tr := TimedResult{Result: res}
	tr.ReadTime = sim.Time(ceilDiv(res.BlocksRead, opt.ReadParallel)) * opt.BlockRead
	tr.RedoTime = sim.Time(ceilDiv(res.Applied, opt.RedoDrives)) * opt.RedoWrite
	tr.Elapsed = tr.ReadTime + tr.RedoTime
	return recovered, tr, nil
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
