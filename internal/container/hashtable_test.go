package container

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTableBasic(t *testing.T) {
	tb := NewTable[string]()
	if tb.Len() != 0 {
		t.Fatal("new table not empty")
	}
	if !tb.Put(1, "a") {
		t.Fatal("Put of new key returned false")
	}
	if tb.Put(1, "b") {
		t.Fatal("Put of existing key returned true")
	}
	v, ok := tb.Get(1)
	if !ok || v != "b" {
		t.Fatalf("Get(1) = %q,%v want b,true", v, ok)
	}
	if _, ok := tb.Get(2); ok {
		t.Fatal("Get of absent key returned ok")
	}
	if !tb.Delete(1) {
		t.Fatal("Delete of present key returned false")
	}
	if tb.Delete(1) {
		t.Fatal("Delete of absent key returned true")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", tb.Len())
	}
}

func TestTableGrowShrink(t *testing.T) {
	tb := NewTable[int]()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tb.Put(i, int(i*3))
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	if len(tb.buckets) <= tableMinBuckets {
		t.Fatalf("table did not grow: %d buckets", len(tb.buckets))
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tb.Get(i)
		if !ok || v != int(i*3) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := uint64(0); i < n; i++ {
		if !tb.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if len(tb.buckets) != tableMinBuckets {
		t.Fatalf("table did not shrink: %d buckets", len(tb.buckets))
	}
}

func TestTableRangeAndKeys(t *testing.T) {
	tb := NewTable[int]()
	want := map[uint64]int{}
	for i := uint64(0); i < 100; i++ {
		tb.Put(i, int(i))
		want[i] = int(i)
	}
	got := map[uint64]int{}
	tb.Range(func(k uint64, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range: key %d = %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	visits := 0
	tb.Range(func(uint64, int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Range after false: %d visits, want 1", visits)
	}
	if len(tb.Keys()) != 100 {
		t.Fatalf("Keys() returned %d keys, want 100", len(tb.Keys()))
	}
}

// TestTableMatchesMapModel drives the table with a random operation
// sequence and cross-checks every result against Go's built-in map.
func TestTableMatchesMapModel(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		tb := NewTable[uint64]()
		model := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			key := uint64(rng.IntN(300)) // small key space forces collisions
			switch rng.IntN(3) {
			case 0:
				val := rng.Uint64()
				_, existed := model[key]
				if tb.Put(key, val) != !existed {
					return false
				}
				model[key] = val
			case 1:
				v, ok := tb.Get(key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				_, existed := model[key]
				if tb.Delete(key) != existed {
					return false
				}
				delete(model, key)
			}
			if tb.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAdversarialKeys(t *testing.T) {
	// Keys that collide trivially without mixing: multiples of the bucket
	// count. The SplitMix64 finalizer must still spread them.
	tb := NewTable[int]()
	for i := uint64(0); i < 4096; i++ {
		tb.Put(i*uint64(tableMinBuckets)*1024, int(i))
	}
	maxChain := 0
	for _, head := range tb.buckets {
		n := 0
		for node := head; node != nil; node = node.next {
			n++
		}
		if n > maxChain {
			maxChain = n
		}
	}
	if maxChain > 32 {
		t.Fatalf("pathological chain length %d for structured keys", maxChain)
	}
}

func BenchmarkTablePutGetDelete(b *testing.B) {
	tb := NewTable[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 50000)
		tb.Put(k, i)
		tb.Get(k)
		if i%2 == 1 {
			tb.Delete(k)
		}
	}
}

// TestTableChurnReusesNodes is the allocation regression gate for the node
// free list: steady-state delete/insert churn — the LM's per-transaction
// and per-object table traffic — must not allocate once the table has seen
// its peak membership.
func TestTableChurnReusesNodes(t *testing.T) {
	tb := NewTable[int]()
	for i := 0; i < 1024; i++ {
		tb.Put(uint64(i), i)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			if !tb.Delete(uint64(i)) {
				t.Fatal("delete of present key failed")
			}
			if !tb.Put(uint64(i), i) {
				t.Fatal("reinsert reported existing key")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state churn allocates %v allocs/run, want 0", avg)
	}
	if tb.Len() != 1024 {
		t.Fatalf("Len = %d after balanced churn, want 1024", tb.Len())
	}
	for i := 0; i < 1024; i++ {
		if v, ok := tb.Get(uint64(i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v after churn", i, v, ok)
		}
	}
}

// TestTableShrinkDropsFreeList checks memory actually falls after a burst:
// shrinking the bucket array releases the recycled nodes too.
func TestTableShrinkDropsFreeList(t *testing.T) {
	tb := NewTable[int]()
	for i := 0; i < 4096; i++ {
		tb.Put(uint64(i), i)
	}
	for i := 0; i < 4096; i++ {
		tb.Delete(uint64(i))
	}
	// Each resize-down drops the list; only nodes deleted after the final
	// shrink (buckets already at minimum) may linger.
	nfree := 0
	for n := tb.free; n != nil; n = n.next {
		nfree++
	}
	if nfree > 4 {
		t.Fatalf("free list holds %d nodes after draining a 4096-entry burst, want the shrinks to have dropped it", nfree)
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tb.Len())
	}
}
