package container

// Treap is a randomized balanced binary search tree mapping uint64 keys to
// values of type V. The flush scheduler (internal/flushdisk) keeps each
// drive's pending flush requests in a Treap keyed by object identifier so
// that the request nearest the drive's current position — in the circular
// oid-distance sense the paper defines for flush locality — can be found in
// O(log n) via Ceiling/Floor/Min/Max queries.
type Treap[V any] struct {
	root *treapNode[V]
	n    int
	rng  uint64
}

type treapNode[V any] struct {
	key         uint64
	val         V
	prio        uint64
	left, right *treapNode[V]
}

// NewTreap returns an empty treap. The seed drives the heap priorities; any
// value (including 0) is fine and keeps runs deterministic.
func NewTreap[V any](seed uint64) *Treap[V] {
	return &Treap[V]{rng: seed ^ 0x9e3779b97f4a7c15}
}

// Len reports the number of entries.
func (t *Treap[V]) Len() int { return t.n }

func (t *Treap[V]) nextPrio() uint64 {
	// xorshift64*: cheap, deterministic, good enough for treap priorities.
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Get returns the value stored under key.
func (t *Treap[V]) Get(key uint64) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key and reports whether the key
// was newly inserted.
func (t *Treap[V]) Put(key uint64, val V) bool {
	var inserted bool
	t.root, inserted = t.insert(t.root, key, val)
	if inserted {
		t.n++
	}
	return inserted
}

func (t *Treap[V]) insert(n *treapNode[V], key uint64, val V) (*treapNode[V], bool) {
	if n == nil {
		return &treapNode[V]{key: key, val: val, prio: t.nextPrio()}, true
	}
	var inserted bool
	switch {
	case key < n.key:
		n.left, inserted = t.insert(n.left, key, val)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	case key > n.key:
		n.right, inserted = t.insert(n.right, key, val)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	default:
		n.val = val
	}
	return n, inserted
}

// Delete removes key and reports whether it was present.
func (t *Treap[V]) Delete(key uint64) bool {
	var deleted bool
	t.root, deleted = t.delete(t.root, key)
	if deleted {
		t.n--
	}
	return deleted
}

func (t *Treap[V]) delete(n *treapNode[V], key uint64) (*treapNode[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = t.delete(n.left, key)
	case key > n.key:
		n.right, deleted = t.delete(n.right, key)
	default:
		return t.merge(n.left, n.right), true
	}
	return n, deleted
}

func (t *Treap[V]) merge(a, b *treapNode[V]) *treapNode[V] {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio > b.prio:
		a.right = t.merge(a.right, b)
		return a
	default:
		b.left = t.merge(a, b.left)
		return b
	}
}

func rotateLeft[V any](n *treapNode[V]) *treapNode[V] {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

func rotateRight[V any](n *treapNode[V]) *treapNode[V] {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

// Min returns the smallest key.
func (t *Treap[V]) Min() (uint64, V, bool) {
	n := t.root
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key.
func (t *Treap[V]) Max() (uint64, V, bool) {
	n := t.root
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ceiling returns the smallest entry with key >= k.
func (t *Treap[V]) Ceiling(k uint64) (uint64, V, bool) {
	var best *treapNode[V]
	n := t.root
	for n != nil {
		if n.key >= k {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Floor returns the largest entry with key <= k.
func (t *Treap[V]) Floor(k uint64) (uint64, V, bool) {
	var best *treapNode[V]
	n := t.root
	for n != nil {
		if n.key <= k {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Range calls fn in ascending key order until fn returns false.
func (t *Treap[V]) Range(fn func(key uint64, val V) bool) {
	var walk func(n *treapNode[V]) bool
	walk = func(n *treapNode[V]) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}
