// Package container provides the in-memory data structures prescribed by
// the paper for the logging manager's bookkeeping: a chained hash table
// (section 2.3 calls for hash tables with chaining, "rather than open
// addressing", for both the logged object table and the logged transaction
// table, because of their dynamic membership) and a treap-based ordered set
// used by the flush scheduler to find the pending object nearest a disk
// head position.
package container

// Table is a chained hash table mapping uint64 keys (object identifiers or
// transaction identifiers) to values of type V. Buckets grow by doubling
// when the load factor exceeds 4 and shrink when it falls below 1/8, so the
// table tracks the highly dynamic membership the paper describes without
// retaining peak-sized storage forever.
// Deleted nodes are kept on a free list and reused by later inserts: the
// LM's tables see constant entry churn (every transaction and every logged
// object comes and goes), and recycling nodes keeps the steady-state append
// path allocation-free. The free list is bounded by the table's peak
// membership and is dropped whenever the bucket array shrinks, so memory
// still falls after a burst.
type Table[V any] struct {
	buckets []*tableNode[V]
	n       int
	free    *tableNode[V] // recycled nodes, reused LIFO
}

type tableNode[V any] struct {
	key  uint64
	val  V
	next *tableNode[V]
}

const (
	tableMinBuckets = 8
	tableMaxLoad    = 4 // resize up when n > load*buckets
	tableMinLoad    = 8 // resize down when n*minLoad < buckets
)

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{buckets: make([]*tableNode[V], tableMinBuckets)}
}

// Len reports the number of entries.
func (t *Table[V]) Len() int { return t.n }

// hash mixes the key so that sequential identifiers spread across buckets.
// This is the 64-bit finalizer from SplitMix64.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (t *Table[V]) bucket(key uint64) int {
	return int(hash(key) & uint64(len(t.buckets)-1))
}

// Get returns the value stored under key and whether it was present.
func (t *Table[V]) Get(key uint64) (V, bool) {
	for n := t.buckets[t.bucket(key)]; n != nil; n = n.next {
		if n.key == key {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put stores val under key, replacing any previous value. It reports
// whether the key was newly inserted.
func (t *Table[V]) Put(key uint64, val V) bool {
	b := t.bucket(key)
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.key == key {
			n.val = val
			return false
		}
	}
	if n := t.free; n != nil {
		t.free = n.next
		n.key, n.val, n.next = key, val, t.buckets[b]
		t.buckets[b] = n
	} else {
		t.buckets[b] = &tableNode[V]{key: key, val: val, next: t.buckets[b]}
	}
	t.n++
	if t.n > tableMaxLoad*len(t.buckets) {
		t.resize(len(t.buckets) * 2)
	}
	return true
}

// Delete removes key and reports whether it was present.
func (t *Table[V]) Delete(key uint64) bool {
	b := t.bucket(key)
	prev := &t.buckets[b]
	for n := *prev; n != nil; n = n.next {
		if n.key == key {
			*prev = n.next
			t.n--
			var zero V
			n.key, n.val = 0, zero // do not retain the evicted value
			n.next = t.free
			t.free = n
			if len(t.buckets) > tableMinBuckets && t.n*tableMinLoad < len(t.buckets) {
				t.resize(len(t.buckets) / 2)
			}
			return true
		}
		prev = &n.next
	}
	return false
}

// Range calls fn for every entry until fn returns false. Iteration order is
// unspecified. The table must not be mutated during Range.
func (t *Table[V]) Range(fn func(key uint64, val V) bool) {
	for _, head := range t.buckets {
		for n := head; n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

// Keys returns all keys in unspecified order.
func (t *Table[V]) Keys() []uint64 {
	out := make([]uint64, 0, t.n)
	t.Range(func(k uint64, _ V) bool { out = append(out, k); return true })
	return out
}

func (t *Table[V]) resize(size int) {
	old := t.buckets
	if size < len(old) {
		t.free = nil // shrinking: let burst-peak nodes go back to the GC
	}
	t.buckets = make([]*tableNode[V], size)
	for _, head := range old {
		for n := head; n != nil; {
			next := n.next
			b := t.bucket(n.key)
			n.next = t.buckets[b]
			t.buckets[b] = n
			n = next
		}
	}
}
