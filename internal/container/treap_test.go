package container

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTreapBasic(t *testing.T) {
	tr := NewTreap[string](1)
	if tr.Len() != 0 {
		t.Fatal("new treap not empty")
	}
	if !tr.Put(5, "five") {
		t.Fatal("Put of new key returned false")
	}
	if tr.Put(5, "FIVE") {
		t.Fatal("Put of existing key returned true")
	}
	v, ok := tr.Get(5)
	if !ok || v != "FIVE" {
		t.Fatalf("Get(5) = %q,%v", v, ok)
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Fatal("Delete semantics wrong")
	}
}

func TestTreapOrderedQueries(t *testing.T) {
	tr := NewTreap[int](7)
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		tr.Put(k, int(k))
	}
	if k, _, ok := tr.Min(); !ok || k != 10 {
		t.Fatalf("Min = %d,%v want 10", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 50 {
		t.Fatalf("Max = %d,%v want 50", k, ok)
	}
	cases := []struct {
		q        uint64
		ceil     uint64
		ceilOK   bool
		floor    uint64
		floorOK  bool
		haveBoth bool
	}{
		{q: 0, ceil: 10, ceilOK: true, floorOK: false},
		{q: 10, ceil: 10, ceilOK: true, floor: 10, floorOK: true},
		{q: 25, ceil: 30, ceilOK: true, floor: 20, floorOK: true},
		{q: 50, ceil: 50, ceilOK: true, floor: 50, floorOK: true},
		{q: 51, ceilOK: false, floor: 50, floorOK: true},
	}
	for _, c := range cases {
		k, _, ok := tr.Ceiling(c.q)
		if ok != c.ceilOK || (ok && k != c.ceil) {
			t.Errorf("Ceiling(%d) = %d,%v want %d,%v", c.q, k, ok, c.ceil, c.ceilOK)
		}
		k, _, ok = tr.Floor(c.q)
		if ok != c.floorOK || (ok && k != c.floor) {
			t.Errorf("Floor(%d) = %d,%v want %d,%v", c.q, k, ok, c.floor, c.floorOK)
		}
	}
}

func TestTreapEmptyQueries(t *testing.T) {
	tr := NewTreap[int](3)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty treap returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty treap returned ok")
	}
	if _, _, ok := tr.Ceiling(5); ok {
		t.Fatal("Ceiling on empty treap returned ok")
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor on empty treap returned ok")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty treap returned ok")
	}
}

func TestTreapRangeSorted(t *testing.T) {
	tr := NewTreap[int](11)
	rng := rand.New(rand.NewPCG(5, 6))
	inserted := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Uint64() % 1000
		tr.Put(k, int(k))
		inserted[k] = true
	}
	var keys []uint64
	tr.Range(func(k uint64, _ int) bool { keys = append(keys, k); return true })
	if len(keys) != len(inserted) {
		t.Fatalf("Range visited %d keys, want %d", len(keys), len(inserted))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Range not in ascending order")
	}
	// Early termination.
	visits := 0
	tr.Range(func(uint64, int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Range after false: %d visits", visits)
	}
}

// TestTreapMatchesSortedModel cross-checks the treap against a sorted-slice
// model under random Put/Delete/Ceiling/Floor traffic.
func TestTreapMatchesSortedModel(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		tr := NewTreap[uint64](seed)
		model := map[uint64]uint64{}
		sortedKeys := func() []uint64 {
			ks := make([]uint64, 0, len(model))
			for k := range model {
				ks = append(ks, k)
			}
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			return ks
		}
		for op := 0; op < 1500; op++ {
			key := uint64(rng.IntN(200))
			switch rng.IntN(4) {
			case 0:
				val := rng.Uint64()
				_, existed := model[key]
				if tr.Put(key, val) != !existed {
					return false
				}
				model[key] = val
			case 1:
				_, existed := model[key]
				if tr.Delete(key) != existed {
					return false
				}
				delete(model, key)
			case 2:
				k, v, ok := tr.Ceiling(key)
				var want uint64
				found := false
				for _, mk := range sortedKeys() {
					if mk >= key {
						want, found = mk, true
						break
					}
				}
				if ok != found || (ok && (k != want || v != model[want])) {
					return false
				}
			case 3:
				k, v, ok := tr.Floor(key)
				var want uint64
				found := false
				ks := sortedKeys()
				for i := len(ks) - 1; i >= 0; i-- {
					if ks[i] <= key {
						want, found = ks[i], true
						break
					}
				}
				if ok != found || (ok && (k != want || v != model[want])) {
					return false
				}
			}
			if tr.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestTreapBalance inserts sequential keys (the worst case for an unbalanced
// BST) and verifies the depth stays logarithmic.
func TestTreapBalance(t *testing.T) {
	tr := NewTreap[int](123)
	const n = 1 << 14
	for i := uint64(0); i < n; i++ {
		tr.Put(i, int(i))
	}
	var depth func(*treapNode[int]) int
	depth = func(nd *treapNode[int]) int {
		if nd == nil {
			return 0
		}
		l, r := depth(nd.left), depth(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	d := depth(tr.root)
	// Expected depth ~ 3*log2(n) with overwhelming probability.
	if d > 3*14+10 {
		t.Fatalf("treap depth %d for %d sequential keys — degenerate balance", d, n)
	}
}

func TestTreapHeapProperty(t *testing.T) {
	tr := NewTreap[int](321)
	rng := rand.New(rand.NewPCG(9, 8))
	for i := 0; i < 2000; i++ {
		tr.Put(rng.Uint64()%5000, i)
	}
	var check func(*treapNode[int]) bool
	check = func(n *treapNode[int]) bool {
		if n == nil {
			return true
		}
		if n.left != nil && (n.left.prio > n.prio || n.left.key >= n.key) {
			return false
		}
		if n.right != nil && (n.right.prio > n.prio || n.right.key <= n.key) {
			return false
		}
		return check(n.left) && check(n.right)
	}
	if !check(tr.root) {
		t.Fatal("treap violates heap/BST invariants")
	}
}

func BenchmarkTreapPutDeleteCeiling(b *testing.B) {
	tr := NewTreap[int](77)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := rng.Uint64() % 100000
		tr.Put(k, i)
		tr.Ceiling(rng.Uint64() % 100000)
		if i%2 == 1 {
			tr.Delete(k)
		}
	}
}
