package hybrid

import (
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

func newSetup(t *testing.T, p Params, fc ...FlushConfig) *Setup {
	t.Helper()
	cfg := FlushConfig{Drives: 1, Transfer: 5 * sim.Millisecond, NumObjects: 1000}
	if len(fc) > 0 {
		cfg = fc[0]
	}
	s, err := NewSetup(sim.NewEngine(3, 4), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (Params{QueueSizes: []int{8, 8}}).WithDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{}).WithDefaults().Validate(); err == nil {
		t.Fatal("empty queues accepted")
	}
	if err := (Params{QueueSizes: []int{2}}).WithDefaults().Validate(); err == nil {
		t.Fatal("undersized queue accepted")
	}
}

func TestCommitDurableAfterGroupCommit(t *testing.T) {
	s := newSetup(t, Params{QueueSizes: []int{8, 8}, BlockPayload: 100})
	m := s.LM
	done := sim.Time(-1)
	m.Begin(1)
	m.WriteData(1, 42, 84)
	m.Commit(1, func() { done = s.Eng.Now() })
	s.Eng.Run(sim.Second)
	if done != -1 {
		t.Fatal("commit durable without buffer seal")
	}
	m.Begin(2)
	m.WriteData(2, 43, 84) // overflows the buffer, sealing it
	s.Eng.Run(2 * sim.Second)
	if done < 0 {
		t.Fatal("commit never became durable")
	}
}

func TestSingleTxLifecycle(t *testing.T) {
	s := newSetup(t, Params{QueueSizes: []int{8, 8}, BlockPayload: 100})
	m := s.LM
	m.Begin(1)
	lsn := m.WriteData(1, 7, 84)
	m.Commit(1, nil)
	m.Begin(2)
	m.WriteData(2, 8, 84)
	s.Eng.Run(sim.Second)
	if v, ok := m.DB().Get(7); !ok || v.LSN != lsn {
		t.Fatalf("flushed version %+v %v, want LSN %d", v, ok, lsn)
	}
	st := m.Stats()
	if st.TrackedTxs != 1 { // only tx 2 remains
		t.Fatalf("%d tracked txs, want 1 (committed+flushed should retire)", st.TrackedTxs)
	}
	if st.MemPeakBytes != float64(2*MemPerTx) {
		t.Fatalf("mem peak %v, want %d", st.MemPeakBytes, 2*MemPerTx)
	}
}

func TestAbort(t *testing.T) {
	s := newSetup(t, Params{QueueSizes: []int{8, 8}})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Abort(1)
	s.Eng.Run(sim.Second)
	if _, ok := m.DB().Get(7); ok {
		t.Fatal("aborted update reached the database")
	}
	if m.Stats().TrackedTxs != 0 {
		t.Fatal("aborted tx still tracked")
	}
}

// tracker records kills so test drivers can stop driving dead
// transactions, the way the workload generator does.
type tracker struct {
	killed map[logrec.TxID]bool
}

func track(m *Manager) *tracker {
	tr := &tracker{killed: make(map[logrec.TxID]bool)}
	m.SetKillHandler(func(tid logrec.TxID) { tr.killed[tid] = true })
	return tr
}

// churnHybrid pushes short committed transactions through the manager,
// with time for writes to land between steps.
func churnHybrid(s *Setup, tr *tracker, start logrec.TxID, n int, size int, dt sim.Time) {
	for i := 0; i < n; i++ {
		tid := start + logrec.TxID(i)
		s.LM.Begin(tid)
		if !tr.killed[tid] {
			s.LM.WriteData(tid, logrec.OID(100+i), size)
		}
		s.Eng.Run(s.Eng.Now() + dt/2)
		if !tr.killed[tid] {
			s.LM.Commit(tid, nil)
		}
		s.Eng.Run(s.Eng.Now() + dt/2)
	}
}

func TestRegenerationPromotesLongTransaction(t *testing.T) {
	s := newSetup(t, Params{QueueSizes: []int{4, 8}, BlockPayload: 100,
		GroupCommitTimeout: 100 * sim.Millisecond})
	m := s.LM
	tr := track(m)
	m.Begin(1)
	m.WriteData(1, 7, 60)
	s.Eng.Run(50 * sim.Millisecond)
	m.WriteData(1, 8, 60)
	s.Eng.Run(100 * sim.Millisecond)
	churnHybrid(s, tr, 100, 60, 84, 20*sim.Millisecond)
	st := m.Stats()
	if st.Regenerated == 0 {
		t.Fatalf("long transaction never regenerated: %+v", st)
	}
	if tr.killed[1] {
		t.Fatalf("long transaction killed with ample queue-1 space: %+v", st)
	}
	// The whole record set moves: regenerated count is a multiple of the
	// transaction's record count (BEGIN + 2 data = 3).
	if st.Regenerated%3 != 0 {
		t.Fatalf("regenerated %d records, not a multiple of the tx's 3", st.Regenerated)
	}
	done := false
	m.Commit(1, func() { done = true })
	churnHybrid(s, tr, 500, 30, 84, 20*sim.Millisecond)
	s.Eng.Run(s.Eng.Now() + 5*sim.Second)
	if !done {
		t.Fatal("long transaction failed to commit after promotion")
	}
}

func TestRecirculationInLastQueue(t *testing.T) {
	s := newSetup(t, Params{QueueSizes: []int{4, 5}, BlockPayload: 100, Recirculate: true},
		FlushConfig{Drives: 1, Transfer: 25 * sim.Millisecond, NumObjects: 1000})
	m := s.LM
	tr := track(m)
	m.Begin(1)
	m.WriteData(1, 7, 60)
	s.Eng.Run(100 * sim.Millisecond)
	churnHybrid(s, tr, 100, 150, 84, 20*sim.Millisecond)
	st := m.Stats()
	if tr.killed[1] {
		t.Fatalf("recirculating hybrid killed the long transaction: %+v", st)
	}
	if st.Regenerated == 0 {
		t.Fatal("nothing regenerated")
	}
}

func TestKillWithoutRecirculation(t *testing.T) {
	s := newSetup(t, Params{QueueSizes: []int{4, 4}, BlockPayload: 100},
		FlushConfig{Drives: 1, Transfer: 25 * sim.Millisecond, NumObjects: 1000})
	m := s.LM
	tr := track(m)
	m.Begin(1)
	m.WriteData(1, 7, 60)
	s.Eng.Run(100 * sim.Millisecond)
	churnHybrid(s, tr, 100, 150, 84, 20*sim.Millisecond)
	if !tr.killed[1] {
		t.Fatalf("long transaction not killed: %+v", m.Stats())
	}
}

// TestHybridTradeoffs drives the hybrid with the paper's generator on a
// many-update workload (where section 6 says the hybrid's memory saving is
// "drastic") and checks its position in the design space: FW-like memory,
// EL-like disk space, and the regeneration bandwidth premium over a pure
// append log.
func TestHybridTradeoffs(t *testing.T) {
	mix := workload.Mix{
		{Name: "short", Prob: 0.8, Lifetime: sim.Second, NumRecords: 2, RecordSize: 100},
		{Name: "update-heavy", Prob: 0.2, Lifetime: 10 * sim.Second, NumRecords: 10, RecordSize: 100},
	}
	runHybrid := func(sizes []int) Stats {
		eng := sim.NewEngine(1, 99)
		s, err := NewSetup(eng, Params{QueueSizes: sizes, Recirculate: true,
			GroupCommitTimeout: 100 * sim.Millisecond},
			FlushConfig{Drives: 10, Transfer: 25 * sim.Millisecond, NumObjects: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.New(eng, s.LM, workload.Config{
			Mix:         mix,
			ArrivalRate: 100,
			Runtime:     50 * sim.Second,
			NumObjects:  1_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen.Start()
		eng.Run(50 * sim.Second)
		return s.LM.Stats()
	}
	hyb := runHybrid([]int{30, 60})
	if hyb.Insufficient() {
		t.Fatalf("hybrid insufficient at 90 blocks: %+v", hyb)
	}
	if hyb.Regenerated == 0 {
		t.Fatal("no regeneration happened; the workload exerts no promotion pressure")
	}

	base := harness.PaperDefaults(0.05)
	base.Workload.Mix = mix
	base.Workload.Runtime = 50 * sim.Second
	base.Workload.NumObjects = 1_000_000
	base.Flush.NumObjects = 1_000_000

	// EL at the same 90-block budget: the hybrid's memory must be far
	// below EL's LOT+LTT model.
	elCfg := base
	elCfg.LM = core.Params{Mode: core.ModeEphemeral, GenSizes: []int{30, 60}, Recirculate: true}
	el, err := harness.Run(elCfg)
	if err != nil {
		t.Fatal(err)
	}
	// FW needs several times the space for the same workload; at a
	// sufficient size its bandwidth is the pure append rate, which the
	// hybrid must exceed (the regeneration premium).
	fwCfg := base
	fwCfg.LM = core.Params{Mode: core.ModeFirewall, GenSizes: []int{260}}
	fw, err := harness.Run(fwCfg)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Insufficient() {
		t.Fatalf("FW reference budget insufficient:\n%s", fw.LM)
	}
	t.Logf("hybrid: %d blocks, %.2f writes/s, %.0f B mem; EL: %.2f writes/s, %.0f B mem; FW: %d blocks, %.2f writes/s, %.0f B mem",
		hyb.TotalBlocks, hyb.TotalBandwidth, hyb.MemPeakBytes,
		el.LM.TotalBandwidth, el.LM.MemPeakBytes,
		260, fw.LM.TotalBandwidth, fw.LM.MemPeakBytes)
	if hyb.MemPeakBytes >= el.LM.MemPeakBytes/2 {
		t.Fatalf("hybrid memory %.0f not drastically below EL %.0f", hyb.MemPeakBytes, el.LM.MemPeakBytes)
	}
	if hyb.TotalBandwidth <= fw.LM.TotalBandwidth {
		t.Fatalf("hybrid bandwidth %.2f not above the pure append rate %.2f — regeneration must cost",
			hyb.TotalBandwidth, fw.LM.TotalBandwidth)
	}
	if hyb.TotalBlocks*2 >= 260 {
		t.Fatalf("hybrid space %d not well below FW's 260", hyb.TotalBlocks)
	}
}

func TestHybridDeterminism(t *testing.T) {
	run := func() Stats {
		eng := sim.NewEngine(5, 6)
		s, err := NewSetup(eng, Params{QueueSizes: []int{6, 8}, Recirculate: true},
			FlushConfig{Drives: 2, Transfer: 20 * sim.Millisecond, NumObjects: 10000})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.New(eng, s.LM, workload.Config{
			Mix:         workload.PaperMix(0.2),
			ArrivalRate: 50,
			Runtime:     20 * sim.Second,
			NumObjects:  10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen.Start()
		eng.Run(25 * sim.Second)
		return s.LM.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("hybrid runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestHintPlacementStartsInOlderQueue(t *testing.T) {
	s := newSetup(t, Params{
		QueueSizes:         []int{8, 8},
		Recirculate:        true,
		HintBoundaries:     []sim.Time{2 * sim.Second},
		GroupCommitTimeout: 50 * sim.Millisecond,
	})
	m := s.LM
	m.BeginHinted(1, 10*sim.Second)
	if got := m.txs[1].queue; got != 1 {
		t.Fatalf("hinted long transaction starts in queue %d, want 1", got)
	}
	m.BeginHinted(2, sim.Second)
	if got := m.txs[2].queue; got != 0 {
		t.Fatalf("hinted short transaction starts in queue %d, want 0", got)
	}
	done := 0
	m.Commit(1, func() { done++ })
	m.Commit(2, func() { done++ })
	s.Eng.Run(sim.Second)
	if done != 2 {
		t.Fatalf("%d hinted transactions durable, want 2", done)
	}
}

// TestHybridSoakOracle drives the hybrid with randomized traffic and
// verifies invariants throughout plus stable-database/oracle equality
// after draining.
func TestHybridSoakOracle(t *testing.T) {
	for seed := uint64(60); seed <= 64; seed++ {
		eng := sim.NewEngine(seed, seed^0xbeef)
		s, err := NewSetup(eng, Params{
			QueueSizes: []int{8, 10}, Recirculate: true,
			GroupCommitTimeout: 80 * sim.Millisecond,
		}, FlushConfig{Drives: 2, Transfer: 10 * sim.Millisecond, NumObjects: 1000})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.New(eng, s.LM, workload.Config{
			Mix: workload.Mix{
				{Name: "s", Prob: 0.8, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 80},
				{Name: "l", Prob: 0.2, Lifetime: 3 * sim.Second, NumRecords: 4, RecordSize: 80},
			},
			ArrivalRate: 40,
			Runtime:     20 * sim.Second,
			NumObjects:  1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen.Start()
		for step := sim.Time(0); step < 20*sim.Second; step += 2 * sim.Second {
			eng.Run(step)
			if err := s.LM.CheckInvariants(); err != nil {
				t.Fatalf("seed %d at %v: %v", seed, step, err)
			}
		}
		eng.Run(40 * sim.Second) // drain
		if err := s.LM.CheckInvariants(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		st := s.LM.Stats()
		if st.Killed > 0 {
			continue // oracle still valid but drained-state asserts differ; sizes are generous so this should not happen
		}
		if st.TrackedTxs != 0 {
			t.Fatalf("seed %d: %d txs never retired", seed, st.TrackedTxs)
		}
		// DB equals oracle.
		for oid, lsn := range gen.Oracle() {
			v, ok := s.DB.Get(oid)
			if !ok || v.LSN != lsn {
				t.Fatalf("seed %d: oid %d db=%v/%v oracle=%d", seed, oid, v.LSN, ok, lsn)
			}
		}
	}
}
