// Package hybrid implements the EL-FW hybrid scheme sketched in the
// paper's concluding remarks (section 6):
//
//	"Like EL, the log is segmented into a chain of FIFO queues. Like FW,
//	a firewall is maintained for each queue; the oldest non-garbage
//	record in a queue is its firewall. Now, the LM retains a pointer to
//	only the oldest log record from each transaction. This can
//	drastically reduce main memory consumption if each transaction
//	updates many objects, but at a price of higher bandwidth. When a
//	transaction's oldest non-garbage log record reaches the head of one
//	queue, all of its log records must be regenerated and added to the
//	tail of the next queue because the LM does not have pointers to know
//	their whereabouts in the current queue."
//
// The implementation reuses the block device, flush array and stable
// database substrate. Main memory is charged at MemPerTx bytes per tracked
// transaction — no per-object table exists at all. Regeneration rewrites a
// transaction's entire record set (sourced from the in-memory update
// buffers the paper assumes), which is exactly where the extra bandwidth
// relative to EL comes from.
package hybrid

import (
	"fmt"
	"sort"

	"ellog/internal/blockdev"
	"ellog/internal/flushdisk"
	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

// MemPerTx is the hybrid's main-memory charge per tracked transaction: the
// FW-style entry (22 bytes in the paper's estimate) plus a queue index.
const MemPerTx = 24

// Params configures the hybrid manager.
type Params struct {
	// QueueSizes gives each FIFO queue's capacity in blocks, youngest
	// first.
	QueueSizes []int
	// Recirculate lets the last queue regenerate into its own tail;
	// otherwise transactions reaching its head are killed (if active) or
	// resolved by force flushing (if committed).
	Recirculate bool
	// BlockPayload, ThresholdK, TxRecSize and WriteLatency mirror core's
	// parameters and default to the paper's values.
	BlockPayload int
	ThresholdK   int
	TxRecSize    int
	WriteLatency sim.Time
	// GroupCommitTimeout bounds how long a COMMIT may wait for its buffer
	// to fill. Old queues see little fresh traffic, so transactions that
	// live there need the bound; 0 keeps pure group commit.
	GroupCommitTimeout sim.Time
	// HintBoundaries enables lifetime-hint placement: a transaction with
	// expected lifetime L starts in the oldest queue i such that
	// L > HintBoundaries[i-1]. Section 6 notes the technique "would be
	// particularly beneficial in conjunction with the hybrid EL-FW
	// approach". Nil disables hints.
	HintBoundaries []sim.Time
}

// startQueue returns the queue a new transaction should enter.
func (p Params) startQueue(expected sim.Time) int {
	if p.HintBoundaries == nil || expected <= 0 {
		return 0
	}
	q := 0
	for q < len(p.HintBoundaries) && q < len(p.QueueSizes)-1 && expected > p.HintBoundaries[q] {
		q++
	}
	return q
}

// WithDefaults fills unset fields.
func (p Params) WithDefaults() Params {
	if p.BlockPayload == 0 {
		p.BlockPayload = 2000
	}
	if p.ThresholdK == 0 {
		p.ThresholdK = 2
	}
	if p.TxRecSize == 0 {
		p.TxRecSize = 8
	}
	if p.WriteLatency == 0 {
		p.WriteLatency = 15 * sim.Millisecond
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if len(p.QueueSizes) == 0 {
		return fmt.Errorf("hybrid: no queues configured")
	}
	for i, s := range p.QueueSizes {
		if s < p.ThresholdK+2 {
			return fmt.Errorf("hybrid: queue %d size %d below minimum %d", i, s, p.ThresholdK+2)
		}
	}
	return nil
}

type txState uint8

const (
	txActive txState = iota
	txCommitting
	txCommitted // durable; waiting for flushes
	txGone
)

// recInfo is one logged record, kept in main memory only as part of the
// transaction's regeneration source (the paper assumes updated values are
// buffered in RAM anyway); the *tracking* cost charged to the hybrid is
// still just the per-transaction pointer.
type recInfo struct {
	kind logrec.Kind
	obj  logrec.OID
	lsn  logrec.LSN
	size int
}

type txEntry struct {
	tid    logrec.TxID
	state  txState
	queue  int   // queue holding the oldest record
	anchor int64 // global sequence number of the block holding it
	recs   []recInfo
	// unflushed counts committed updates not yet on the stable database.
	unflushed   int
	onDurable   func()
	commitAppAt sim.Time
}

// slot is one block position of a queue's circular array.
type slot struct {
	id      blockdev.BlockID
	seq     int64 // global block sequence, -1 when free
	anchors []*txEntry
	state   slotState
}

type slotState uint8

const (
	slotFree slotState = iota
	slotFilling
	slotInFlight
	slotDurable
)

type buffer struct {
	slot    *slot
	free    int
	recs    []*logrec.Record
	commits []*txEntry
	anchors []*txEntry // txs whose oldest record is in this buffer
	sealed  bool
}

type queue struct {
	idx        int
	ring       []*slot
	head, tail int
	used       int
	fill       *buffer
	nextSeq    int64
}

// Manager is the hybrid logging manager. It satisfies the same workload
// interface as the EL/FW manager.
type Manager struct {
	eng   *sim.Engine
	p     Params
	dev   *blockdev.Device
	flush *flushdisk.Array
	db    *statedb.DB

	queues  []*queue
	txs     map[logrec.TxID]*txEntry
	byObj   map[logrec.OID]*txEntry // latest committed unflushed writer per object
	nextLSN logrec.LSN
	onKill  func(logrec.TxID)

	begins, commits, killed metrics.Counter
	regenerated             metrics.Counter
	appended                metrics.Counter
	emergency               metrics.Counter
	memGauge                metrics.Gauge
	claimDepth              int
}

// Setup bundles the hybrid manager with its substrate.
type Setup struct {
	Eng   *sim.Engine
	Dev   *blockdev.Device
	Flush *flushdisk.Array
	DB    *statedb.DB
	LM    *Manager
}

// FlushConfig mirrors core.FlushConfig.
type FlushConfig struct {
	Drives     int
	Transfer   sim.Time
	NumObjects uint64
}

// NewSetup assembles a hybrid manager on fresh substrate.
func NewSetup(eng *sim.Engine, p Params, fc FlushConfig) (*Setup, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dev := blockdev.New(eng, p.WriteLatency)
	db := statedb.New()
	m := &Manager{
		eng:   eng,
		p:     p,
		dev:   dev,
		db:    db,
		txs:   make(map[logrec.TxID]*txEntry),
		byObj: make(map[logrec.OID]*txEntry),
	}
	m.flush = flushdisk.New(eng, fc.Drives, fc.Transfer, fc.NumObjects, m.flushed)
	for i, size := range p.QueueSizes {
		q := &queue{idx: i}
		for j := 0; j < size; j++ {
			q.ring = append(q.ring, &slot{id: dev.Alloc(i), seq: -1})
		}
		m.queues = append(m.queues, q)
	}
	return &Setup{Eng: eng, Dev: dev, Flush: m.flush, DB: db, LM: m}, nil
}

// SetKillHandler registers the kill callback.
func (m *Manager) SetKillHandler(fn func(logrec.TxID)) { m.onKill = fn }

// DB returns the stable database.
func (m *Manager) DB() *statedb.DB { return m.db }

func (m *Manager) lsn() logrec.LSN {
	m.nextLSN++
	return m.nextLSN
}

func (m *Manager) touchMem() {
	m.memGauge.Set(m.eng.Now(), float64(MemPerTx*len(m.txs)))
}

// BeginHinted starts a transaction; the hint selects the starting queue
// exactly as in core's lifetime-hint extension (here it composes naturally
// with the hybrid, as section 6 suggests: "this technique would be
// particularly beneficial in conjunction with the hybrid EL-FW approach").
func (m *Manager) BeginHinted(tid logrec.TxID, expected sim.Time) {
	if _, ok := m.txs[tid]; ok {
		panic(fmt.Sprintf("hybrid: Begin of existing transaction %d", tid))
	}
	start := m.p.startQueue(expected)
	e := &txEntry{tid: tid, state: txActive, queue: start, anchor: -1}
	m.txs[tid] = e
	m.begins.Inc()
	rec := logrec.NewTxRecord(m.lsn(), m.eng.Now(), logrec.KindBegin, tid, m.p.TxRecSize)
	e.recs = append(e.recs, recInfo{kind: logrec.KindBegin, lsn: rec.LSN, size: rec.Size})
	m.append(start, rec, e, true)
	m.touchMem()
}

// Begin starts a transaction in queue 0.
func (m *Manager) Begin(tid logrec.TxID) { m.BeginHinted(tid, 0) }

// WriteData logs an update and returns its LSN.
func (m *Manager) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("hybrid: WriteData on finished transaction %d", tid))
	}
	rec := logrec.NewDataRecord(m.lsn(), m.eng.Now(), tid, oid, size)
	e.recs = append(e.recs, recInfo{kind: logrec.KindData, obj: oid, lsn: rec.LSN, size: size})
	m.append(e.queue, rec, e, false)
	return rec.LSN
}

// Commit appends the COMMIT record; onDurable fires at group-commit
// acknowledgement.
func (m *Manager) Commit(tid logrec.TxID, onDurable func()) {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("hybrid: Commit on finished transaction %d", tid))
	}
	e.state = txCommitting
	e.onDurable = onDurable
	e.commitAppAt = m.eng.Now()
	rec := logrec.NewTxRecord(m.lsn(), m.eng.Now(), logrec.KindCommit, tid, m.p.TxRecSize)
	e.recs = append(e.recs, recInfo{kind: logrec.KindCommit, lsn: rec.LSN, size: rec.Size})
	m.append(e.queue, rec, e, false)
}

// Abort drops an active transaction.
func (m *Manager) Abort(tid logrec.TxID) {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("hybrid: Abort on finished transaction %d", tid))
	}
	m.drop(e, false)
}

func (m *Manager) mustTx(tid logrec.TxID) *txEntry {
	e, ok := m.txs[tid]
	if !ok {
		panic(fmt.Sprintf("hybrid: unknown transaction %d", tid))
	}
	return e
}

func (m *Manager) drop(e *txEntry, killed bool) {
	e.state = txGone
	for _, r := range e.recs {
		if r.kind == logrec.KindData && m.byObj[r.obj] == e {
			delete(m.byObj, r.obj)
		}
	}
	delete(m.txs, e.tid)
	if killed {
		m.killed.Inc()
		if m.onKill != nil {
			m.onKill(e.tid)
		}
	}
	m.touchMem()
}

// append adds one record to queue qi's fill buffer. anchorHere marks the
// buffer's block as holding the transaction's oldest record.
func (m *Manager) append(qi int, rec *logrec.Record, e *txEntry, anchorHere bool) {
	q := m.queues[qi]
	if rec.Size > m.p.BlockPayload {
		panic("hybrid: record exceeds block payload")
	}
	if q.fill == nil || rec.Size > q.fill.free {
		m.seal(q)
		m.open(q)
	}
	if e.state == txGone {
		return // killed while space was being made
	}
	b := q.fill
	b.free -= rec.Size
	b.recs = append(b.recs, rec)
	m.appended.Inc()
	if anchorHere {
		// The block sequence is unknown until the buffer claims its slot
		// at seal time; a pending anchor can never be at a queue's head,
		// so the transaction is safe meanwhile.
		e.queue = qi
		e.anchor = anchorPending
		b.anchors = append(b.anchors, e)
	}
	if rec.Kind == logrec.KindCommit {
		b.commits = append(b.commits, e)
		if m.p.GroupCommitTimeout > 0 {
			m.eng.After(m.p.GroupCommitTimeout, func() {
				if !b.sealed && q.fill == b {
					m.seal(q)
				}
			})
		}
	}
}

// anchorPending marks a transaction whose oldest record sits in a buffer
// that has not yet claimed its block.
const anchorPending = int64(-2)

// open prepares a slotless fill buffer; the block is claimed only when the
// buffer is written (like core's lazy recirculation buffer), so a queue's
// head never collides with a half-filled tail block.
func (m *Manager) open(q *queue) {
	q.fill = &buffer{free: m.p.BlockPayload}
}

func (m *Manager) seal(q *queue) {
	if q.fill == nil {
		return
	}
	b := q.fill
	q.fill = nil
	s := m.claim(q)
	s.state = slotInFlight
	s.seq = q.nextSeq
	q.nextSeq++
	s.anchors = s.anchors[:0]
	for _, e := range b.anchors {
		if e.state != txGone && e.queue == q.idx && e.anchor == anchorPending {
			e.anchor = s.seq
			s.anchors = append(s.anchors, e)
		}
	}
	b.sealed = true
	m.dev.Write(s.id, logrec.EncodeBlock(b.recs), func(err error) {
		if err != nil {
			// The hybrid manager has no retry path; fault plans target the
			// core manager only.
			panic("hybrid: injected write faults are not supported")
		}
		s.state = slotDurable
		for _, e := range b.commits {
			m.commitDurable(e)
		}
	})
}

func (m *Manager) claim(q *queue) *slot {
	m.claimDepth++
	defer func() { m.claimDepth-- }()
	if m.claimDepth > 8*len(m.queues)+8 {
		panic("hybrid: claim recursion out of control")
	}
	iters := 0
	for len(q.ring)-q.used <= m.p.ThresholdK {
		iters++
		if iters > 4*len(q.ring)+16 || !m.advanceHead(q) {
			if !m.killVictim(q) {
				m.grow(q)
				break
			}
			iters = 0
		}
	}
	s := q.ring[q.tail]
	if s.state != slotFree {
		panic("hybrid: claiming occupied slot")
	}
	q.tail = (q.tail + 1) % len(q.ring)
	q.used++
	return s
}

func (m *Manager) grow(q *queue) {
	s := &slot{id: m.dev.Alloc(q.idx), seq: -1}
	q.ring = append(q.ring, nil)
	copy(q.ring[q.tail+1:], q.ring[q.tail:])
	q.ring[q.tail] = s
	if q.head >= q.tail && q.used > 0 {
		q.head++
	}
	m.emergency.Inc()
}

// advanceHead processes the block at q's head: every transaction anchored
// there that is still alive gets all of its records regenerated into the
// next queue (or this queue's own tail, for a recirculating last queue).
func (m *Manager) advanceHead(q *queue) bool {
	if q.used == 0 {
		return false
	}
	s := q.ring[q.head]
	if s.state != slotDurable {
		return false
	}
	var live []*txEntry
	lastNoRecirc := q.idx == len(m.queues)-1 && !m.p.Recirculate
	for _, e := range s.anchors {
		if e.state == txGone || e.anchor != s.seq || e.queue != q.idx {
			continue // garbage anchor: the tx finished or moved on
		}
		if e.state == txCommitting && lastNoRecirc {
			// Cannot regenerate (nowhere to go), cannot kill (the commit
			// may already be on its way to disk); it resolves within one
			// block write, so refuse to advance for now.
			return false
		}
		live = append(live, e)
	}
	// Free the block before regenerating: regeneration sources the
	// transaction's records from main memory, not from the old block, so
	// the space can be handed to the regenerated copies immediately. (The
	// block's stale bytes survive until the tail wraps back to it, long
	// after the regenerated buffer has been written.)
	s.anchors = nil
	s.state = slotFree
	s.seq = -1
	q.head = (q.head + 1) % len(q.ring)
	q.used--
	for _, e := range live {
		switch {
		case q.idx < len(m.queues)-1:
			// Active, committing and committed-unflushed alike: the whole
			// record set (commit record included) is regenerated from main
			// memory; a regenerated COMMIT that lands first simply makes
			// the transaction durable earlier.
			m.regenerate(e, q.idx+1)
		case m.p.Recirculate:
			m.regenerate(e, q.idx)
		case e.state == txCommitted:
			m.forceFlushTx(e)
		default:
			m.drop(e, true)
		}
	}
	return true
}

// regenerate rewrites every record of the transaction at the tail of the
// target queue — the hybrid's bandwidth price. The transaction's single
// pointer then refers to the first regenerated block.
func (m *Manager) regenerate(e *txEntry, target int) {
	first := true
	for _, r := range e.recs {
		var rec *logrec.Record
		if r.kind == logrec.KindData {
			rec = logrec.NewDataRecord(r.lsn, m.eng.Now(), e.tid, r.obj, r.size)
		} else {
			rec = logrec.NewTxRecord(r.lsn, m.eng.Now(), r.kind, e.tid, r.size)
		}
		m.append(target, rec, e, first)
		if e.state == txGone {
			return // killed mid-regeneration by cascading pressure
		}
		first = false
		m.regenerated.Inc()
	}
}

// killVictim kills the active transaction anchored earliest in the queue,
// or force flushes the earliest committed one.
func (m *Manager) killVictim(q *queue) bool {
	var victim *txEntry
	var bestSeq int64
	for _, e := range m.txs {
		if e.queue != q.idx || e.anchor < 0 {
			continue
		}
		if e.state != txActive && e.state != txCommitted {
			continue
		}
		if victim == nil || e.anchor < bestSeq || (e.anchor == bestSeq && e.tid < victim.tid) {
			victim = e
			bestSeq = e.anchor
		}
	}
	if victim == nil {
		return false
	}
	if victim.state == txCommitted {
		m.forceFlushTx(victim)
		return true
	}
	m.drop(victim, true)
	return true
}

func (m *Manager) commitDurable(e *txEntry) {
	if e.state != txCommitting {
		return
	}
	e.state = txCommitted
	m.commits.Inc()
	// Only the latest update per object matters (REDO logging); dedupe in
	// case the transaction wrote an object more than once.
	latest := make(map[logrec.OID]logrec.LSN)
	for _, r := range e.recs {
		if r.kind == logrec.KindData && r.lsn > latest[r.obj] {
			latest[r.obj] = r.lsn
		}
	}
	for _, obj := range sortedOids(latest) {
		lsn := latest[obj]
		if prev := m.byObj[obj]; prev != nil && prev != e {
			// Superseded: the previous writer's update need not flush.
			prev.unflushed--
			m.retireIfDone(prev)
			m.flush.Remove(obj)
		}
		m.byObj[obj] = e
		e.unflushed++
		m.flush.Enqueue(flushdisk.Request{Obj: obj, LSN: lsn, Val: uint64(lsn), Tx: e.tid})
	}
	if e.onDurable != nil {
		e.onDurable()
	}
	m.retireIfDone(e)
	m.touchMem()
}

func (m *Manager) flushed(req flushdisk.Request) {
	m.db.Apply(req.Obj, req.LSN, req.Val, req.Tx)
	e := m.byObj[req.Obj]
	if e == nil {
		return
	}
	// Only count the flush if it covers e's version of the object.
	for _, r := range e.recs {
		if r.kind == logrec.KindData && r.obj == req.Obj && r.lsn == req.LSN {
			delete(m.byObj, req.Obj)
			e.unflushed--
			m.retireIfDone(e)
			return
		}
	}
}

func (m *Manager) retireIfDone(e *txEntry) {
	if e.state == txCommitted && e.unflushed <= 0 {
		e.state = txGone
		delete(m.txs, e.tid)
		m.touchMem()
	}
}

func (m *Manager) forceFlushTx(e *txEntry) {
	latest := make(map[logrec.OID]logrec.LSN)
	for _, r := range e.recs {
		if r.kind == logrec.KindData && r.lsn > latest[r.obj] {
			latest[r.obj] = r.lsn
		}
	}
	for _, obj := range sortedOids(latest) {
		if m.byObj[obj] == e {
			m.flush.ForceFlush(flushdisk.Request{Obj: obj, LSN: latest[obj], Val: uint64(latest[obj]), Tx: e.tid})
		}
	}
}

// sortedOids returns a map's keys in ascending order, keeping flush
// scheduling deterministic.
func sortedOids(m map[logrec.OID]logrec.LSN) []logrec.OID {
	out := make([]logrec.OID, 0, len(m))
	for obj := range m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes the run.
type Stats struct {
	Elapsed                 sim.Time
	Begins, Commits, Killed uint64
	Appended                uint64
	Regenerated             uint64 // records rewritten by queue promotion
	Emergency               uint64
	TotalBlocks             int
	TotalWrites             uint64
	TotalBandwidth          float64
	MemPeakBytes            float64
	TrackedTxs              int
}

// Insufficient reports whether the disk budget failed.
func (s Stats) Insufficient() bool { return s.Killed > 0 || s.Emergency > 0 }

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	now := m.eng.Now()
	dev := m.dev.Stats()
	s := Stats{
		Elapsed:      now,
		Begins:       m.begins.Count(),
		Commits:      m.commits.Count(),
		Killed:       m.killed.Count(),
		Appended:     m.appended.Count(),
		Regenerated:  m.regenerated.Count(),
		Emergency:    m.emergency.Count(),
		TotalWrites:  dev.Writes,
		MemPeakBytes: m.memGauge.Peak(),
		TrackedTxs:   len(m.txs),
	}
	for _, q := range m.queues {
		s.TotalBlocks += len(q.ring)
	}
	if now > 0 {
		s.TotalBandwidth = float64(s.TotalWrites) / now.Seconds()
	}
	return s
}

// CheckInvariants validates the hybrid manager's bookkeeping: ring
// accounting, anchor consistency, and flush-tracking cross-references.
// Tests call it at checkpoints; it is not on the hot path.
func (m *Manager) CheckInvariants() error {
	for _, q := range m.queues {
		occupied := 0
		for _, s := range q.ring {
			if s.state != slotFree {
				occupied++
			}
		}
		if occupied != q.used {
			return fmt.Errorf("queue %d: used=%d but %d slots occupied", q.idx, q.used, occupied)
		}
		if q.used > 0 {
			idx := q.head
			for i := 0; i < q.used; i++ {
				if q.ring[idx].state == slotFree {
					return fmt.Errorf("queue %d: free slot inside occupied region", q.idx)
				}
				idx = (idx + 1) % len(q.ring)
			}
			if idx != q.tail {
				return fmt.Errorf("queue %d: occupied region does not end at tail", q.idx)
			}
		}
		// Anchors on slots must point back consistently.
		for _, s := range q.ring {
			for _, e := range s.anchors {
				if e.state == txGone {
					continue // lazily cleared
				}
				if e.queue == q.idx && e.anchor == s.seq && s.state == slotFree {
					return fmt.Errorf("queue %d: live anchor for tx %d on freed slot", q.idx, e.tid)
				}
			}
		}
	}
	// Every tracked transaction is sane.
	for tid, e := range m.txs {
		if e.tid != tid {
			return fmt.Errorf("tx map key %d holds entry for %d", tid, e.tid)
		}
		if e.state == txGone {
			return fmt.Errorf("gone tx %d still tracked", tid)
		}
		if e.queue < 0 || e.queue >= len(m.queues) {
			return fmt.Errorf("tx %d in unknown queue %d", tid, e.queue)
		}
		if e.state == txCommitted && e.unflushed <= 0 {
			return fmt.Errorf("committed tx %d with %d unflushed should have retired", tid, e.unflushed)
		}
	}
	// byObj refers only to live committed entries.
	for obj, e := range m.byObj {
		if e.state == txGone {
			return fmt.Errorf("byObj[%d] refers to a gone tx", obj)
		}
	}
	return nil
}
