package obs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// TraceSchema names the JSONL trace wire format: one header line
// {"schema":"ellog-trace/1"} followed by one event object per line.
const TraceSchema = "ellog-trace/1"

// binaryMagic opens the compact binary trace format.
const binaryMagic = "ellogbin1\n"

// JSONLSink streams trace events as JSON lines through a buffered
// writer. Emit never allocates beyond the sink's reusable line buffer, so
// full runs can stream their event firehose without perturbing the
// simulation's allocation profile.
type JSONLSink struct {
	w    *bufio.Writer
	line []byte
	err  error
}

// NewJSONLSink wraps w and writes the schema header line.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), line: make([]byte, 0, 160)}
	_, s.err = s.w.WriteString(`{"schema":"` + TraceSchema + "\"}\n")
	return s
}

// Emit implements trace.Sink. At/kind/gen always appear; zero-valued
// tx/obj/lsn/n are omitted (0 is the unused sentinel for all four in
// event context: LSNs start at 1, TxIDs at 1, and N is kind-specific).
func (s *JSONLSink) Emit(e trace.Event) {
	if s.err != nil {
		return
	}
	b := s.line[:0]
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","gen":`...)
	b = strconv.AppendInt(b, int64(e.Gen), 10)
	if e.Tx != 0 {
		b = append(b, `,"tx":`...)
		b = strconv.AppendUint(b, uint64(e.Tx), 10)
	}
	if e.Obj != 0 {
		b = append(b, `,"obj":`...)
		b = strconv.AppendUint(b, uint64(e.Obj), 10)
	}
	if e.LSN != 0 {
		b = append(b, `,"lsn":`...)
		b = strconv.AppendUint(b, uint64(e.LSN), 10)
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	}
	b = append(b, "}\n"...)
	s.line = b
	_, s.err = s.w.Write(b)
}

// Flush drains the buffer and reports any write error seen so far.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// BinarySink streams events in a compact varint format: ~6–12 bytes per
// event instead of ~70 for JSONL. Times are delta-encoded (emission is
// monotonic in simulated time).
type BinarySink struct {
	w      *bufio.Writer
	lastAt sim.Time
	buf    []byte
	err    error
}

// NewBinarySink wraps w and writes the magic header.
func NewBinarySink(w io.Writer) *BinarySink {
	s := &BinarySink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
	_, s.err = s.w.WriteString(binaryMagic)
	return s
}

// Emit implements trace.Sink.
func (s *BinarySink) Emit(e trace.Event) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = binary.AppendUvarint(b, uint64(e.Kind))
	b = binary.AppendUvarint(b, uint64(e.At-s.lastAt))
	s.lastAt = e.At
	b = binary.AppendVarint(b, int64(e.Gen))
	b = binary.AppendUvarint(b, uint64(e.Tx))
	b = binary.AppendUvarint(b, uint64(e.Obj))
	b = binary.AppendUvarint(b, uint64(e.LSN))
	b = binary.AppendVarint(b, int64(e.N))
	s.buf = b
	_, s.err = s.w.Write(b)
}

// Flush drains the buffer and reports any write error seen so far.
func (s *BinarySink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// jsonEvent mirrors a JSONL trace line for decoding.
type jsonEvent struct {
	Schema string `json:"schema"`
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Gen    int    `json:"gen"`
	Tx     uint64 `json:"tx"`
	Obj    uint64 `json:"obj"`
	LSN    uint64 `json:"lsn"`
	N      int    `json:"n"`
}

// kindByName inverts Kind.String for decoding.
var kindByName = func() map[string]trace.Kind {
	m := make(map[string]trace.Kind)
	for k := trace.EvAppend; k <= trace.EvMove; k++ {
		m[k.String()] = k
	}
	return m
}()

// ReadJSONL decodes an ellog-trace/1 JSONL stream. The header line is
// required; unknown kinds or malformed lines are errors (the eltrace
// -validate mode relies on strictness here).
func ReadJSONL(r io.Reader) ([]trace.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []trace.Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if lineNo == 1 {
			if je.Schema != TraceSchema {
				return nil, fmt.Errorf("line 1: schema %q, want %q", je.Schema, TraceSchema)
			}
			continue
		}
		if je.Schema != "" {
			return nil, fmt.Errorf("line %d: unexpected schema line", lineNo)
		}
		k, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown event kind %q", lineNo, je.Kind)
		}
		out = append(out, trace.Event{
			At: sim.Time(je.At), Kind: k, Gen: je.Gen,
			Tx: logrec.TxID(je.Tx), Obj: logrec.OID(je.Obj), LSN: logrec.LSN(je.LSN), N: je.N,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("empty trace: missing %q header", TraceSchema)
	}
	return out, nil
}

// ReadBinary decodes the compact binary trace format.
func ReadBinary(r io.Reader) ([]trace.Event, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("not an ellog binary trace (magic %q)", magic)
	}
	var out []trace.Event
	var lastAt sim.Time
	for {
		kind, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", len(out), err)
		}
		if kind == 0 || kind > uint64(trace.EvMove) {
			return nil, fmt.Errorf("event %d: invalid kind %d", len(out), kind)
		}
		dAt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event %d: at: %w", len(out), err)
		}
		gen, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("event %d: gen: %w", len(out), err)
		}
		tx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event %d: tx: %w", len(out), err)
		}
		obj, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event %d: obj: %w", len(out), err)
		}
		lsn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event %d: lsn: %w", len(out), err)
		}
		n, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("event %d: n: %w", len(out), err)
		}
		lastAt += sim.Time(dAt)
		out = append(out, trace.Event{
			At: lastAt, Kind: trace.Kind(kind), Gen: int(gen),
			Tx: logrec.TxID(tx), Obj: logrec.OID(obj), LSN: logrec.LSN(lsn), N: int(n),
		})
	}
}

// ReadTraceFile loads a trace, auto-detecting JSONL vs binary by the
// file's opening bytes.
func ReadTraceFile(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadJSONL(br)
}

// WriteJSONLFile dumps events to path in the JSONL trace format —
// elchaos uses it to persist the event stream of a failing crash point.
func WriteJSONLFile(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := NewJSONLSink(f)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
