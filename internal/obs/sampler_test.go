package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ellog/internal/sim"
)

// tickingSampler runs a sampler for d with one probe returning the tick
// ordinal 1, 2, 3, … so every downsampling invariant is checkable.
func tickingSampler(t *testing.T, d sim.Time, interval sim.Time, maxPoints int) *Sampler {
	t.Helper()
	eng := sim.NewEngine(1, 2)
	s := NewSampler(eng, interval, maxPoints)
	n := 0.0
	s.Register("ticks", func() float64 { n++; return n })
	s.Start()
	eng.Run(d)
	return s
}

func TestSamplerDownsamplePreservesSamples(t *testing.T) {
	s := tickingSampler(t, 2*sim.Second, 10*sim.Millisecond, 16)
	if s.Ticks() == 0 {
		t.Fatal("sampler never ticked")
	}
	sr, ok := s.Find("ticks")
	if !ok {
		t.Fatal("registered series not found")
	}
	var total int
	var weighted float64
	for i, p := range sr.Points {
		total += p.N
		weighted += p.Mean * float64(p.N)
		if p.Min > p.Mean || p.Mean > p.Max {
			t.Fatalf("point %d: min %v mean %v max %v out of order", i, p.Min, p.Mean, p.Max)
		}
		if i > 0 && p.At <= sr.Points[i-1].At {
			t.Fatalf("point %d: timestamps not increasing (%v after %v)", i, p.At, sr.Points[i-1].At)
		}
	}
	T := float64(s.Ticks())
	if total != int(s.Ticks()) {
		t.Fatalf("points cover %d samples, sampler ticked %d times", total, s.Ticks())
	}
	if got := sr.Points[0].Min; got != 1 {
		t.Fatalf("first point min = %v, want 1 (first sample)", got)
	}
	if got := sr.Points[len(sr.Points)-1].Max; got != T {
		t.Fatalf("last point max = %v, want %v (last sample)", got, T)
	}
	// The probe is 1..T, so the sample mean is (T+1)/2 no matter how the
	// buckets merged.
	if mean := weighted / T; math.Abs(mean-(T+1)/2) > 1e-9*T {
		t.Fatalf("weighted mean %v, want %v", mean, (T+1)/2)
	}
}

// TestSamplerMemoryBounded is the acceptance check: a run 10x longer must
// not hold more points than the budget — the series downsamples instead.
func TestSamplerMemoryBounded(t *testing.T) {
	const budget = 16
	short := tickingSampler(t, 1*sim.Second, 5*sim.Millisecond, budget)
	long := tickingSampler(t, 10*sim.Second, 5*sim.Millisecond, budget)
	if long.Ticks() < 10*short.Ticks()/2 {
		t.Fatalf("long run ticked only %d times vs short's %d", long.Ticks(), short.Ticks())
	}
	for _, s := range []*Sampler{short, long} {
		sr, _ := s.Find("ticks")
		if len(sr.Points) > budget {
			t.Fatalf("%d ticks produced %d points, budget %d", s.Ticks(), len(sr.Points), budget)
		}
		if len(sr.Points) == 0 {
			t.Fatal("no points retained")
		}
	}
}

func TestSamplerLateRegistration(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	s := NewSampler(eng, 10*sim.Millisecond, 32)
	s.Register("early", func() float64 { return 1 })
	s.Start()
	eng.Run(100 * sim.Millisecond)
	s.Register("late", func() float64 { return 2 })
	eng.Run(200 * sim.Millisecond)
	early, _ := s.Find("early")
	late, ok := s.Find("late")
	if !ok {
		t.Fatal("late probe not sampled")
	}
	var ne, nl int
	for _, p := range early.Points {
		ne += p.N
	}
	for _, p := range late.Points {
		nl += p.N
	}
	if nl == 0 || nl >= ne {
		t.Fatalf("late probe has %d samples vs early's %d; want 0 < late < early", nl, ne)
	}
}

func TestSamplerDuplicateProbePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	s := NewSampler(sim.NewEngine(1, 2), 0, 0)
	s.Register("x", func() float64 { return 0 })
	s.Register("x", func() float64 { return 0 })
}

func TestSamplerDefaultsAndClamps(t *testing.T) {
	s := NewSampler(sim.NewEngine(1, 2), 0, 0)
	if s.Interval() != 100*sim.Millisecond {
		t.Fatalf("default interval %v, want 100ms", s.Interval())
	}
	if s.MaxPoints() != 512 {
		t.Fatalf("default maxPoints %d, want 512", s.MaxPoints())
	}
	if got := NewSampler(sim.NewEngine(1, 2), 0, 3).MaxPoints(); got != 4 {
		t.Fatalf("tiny budget clamped to %d, want 4", got)
	}
	if got := NewSampler(sim.NewEngine(1, 2), 0, 7).MaxPoints(); got != 8 {
		t.Fatalf("odd budget clamped to %d, want 8 (even)", got)
	}
}

func TestSamplerFindFoldsCase(t *testing.T) {
	s := NewSampler(sim.NewEngine(1, 2), 0, 0)
	s.Register("gen0/used_blocks", func() float64 { return 0 })
	s.Register("mem/bytes", func() float64 { return 0 })
	if sr, ok := s.Find("MEM/BY"); !ok || sr.Name != "mem/bytes" {
		t.Fatalf("Find(MEM/BY) = %q, %v", sr.Name, ok)
	}
	if _, ok := s.Find("nope"); ok {
		t.Fatal("Find matched a missing name")
	}
	if sr, ok := s.Find(""); !ok || sr.Name != "gen0/used_blocks" {
		t.Fatalf("Find(\"\") = %q, %v; want first series", sr.Name, ok)
	}
	want := []string{"gen0/used_blocks", "mem/bytes"}
	if got := s.SortedNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedNames = %v, want %v", got, want)
	}
}

func TestMergePairsOddTail(t *testing.T) {
	pts := []Point{
		{At: 0, Min: 1, Max: 3, Mean: 2, N: 2},
		{At: 10, Min: 0, Max: 5, Mean: 4, N: 2},
		{At: 20, Min: 7, Max: 7, Mean: 7, N: 1},
	}
	out := mergePairs(pts)
	if len(out) != 2 {
		t.Fatalf("merged to %d points, want 2", len(out))
	}
	m := out[0]
	if m.At != 0 || m.Min != 0 || m.Max != 5 || m.N != 4 || m.Mean != 3 {
		t.Fatalf("merged pair = %+v", m)
	}
	if out[1].N != 1 || out[1].Mean != 7 {
		t.Fatalf("odd tail mangled: %+v", out[1])
	}
}

func TestProbesJSONRoundTrip(t *testing.T) {
	s := tickingSampler(t, 500*sim.Millisecond, 10*sim.Millisecond, 8)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "probes.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	interval, series, err := ReadProbesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if interval != s.Interval() {
		t.Fatalf("interval %v, want %v", interval, s.Interval())
	}
	if !reflect.DeepEqual(series, s.Series()) {
		t.Fatalf("decoded series differ:\n got %+v\nwant %+v", series, s.Series())
	}
}

func TestReadProbesFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/9","series":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadProbesFile(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
