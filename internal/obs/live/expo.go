package live

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ellog/internal/sim"
)

// appendValue renders a float the way Prometheus clients do.
func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sampleName renders a family plus merged label blocks.
func sampleName(buf []byte, family, labels, extra string) []byte {
	buf = append(buf, family...)
	if labels == "" && extra == "" {
		return buf
	}
	buf = append(buf, '{')
	buf = append(buf, labels...)
	if labels != "" && extra != "" {
		buf = append(buf, ',')
	}
	buf = append(buf, extra...)
	return append(buf, '}')
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE pair per family, samples grouped
// under it, histograms as cumulative le buckets plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	buf := make([]byte, 0, 4096)
	lastFamily := ""
	for _, sm := range s.Samples {
		if sm.Family != lastFamily {
			lastFamily = sm.Family
			if sm.Help != "" {
				buf = append(buf, "# HELP "...)
				buf = append(buf, sm.Family...)
				buf = append(buf, ' ')
				buf = append(buf, escapeHelp(sm.Help)...)
				buf = append(buf, '\n')
			}
			buf = append(buf, "# TYPE "...)
			buf = append(buf, sm.Family...)
			buf = append(buf, ' ')
			buf = append(buf, sm.Kind...)
			buf = append(buf, '\n')
		}
		if sm.Hist != nil {
			var cum uint64
			for i, b := range sm.Hist.Bounds {
				cum += sm.Hist.Counts[i]
				le := strconv.FormatFloat(b, 'g', -1, 64)
				buf = sampleName(buf, sm.Family+"_bucket", sm.Labels, `le="`+le+`"`)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, cum, 10)
				buf = append(buf, '\n')
			}
			buf = sampleName(buf, sm.Family+"_bucket", sm.Labels, `le="+Inf"`)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, sm.Hist.Count, 10)
			buf = append(buf, '\n')
			buf = sampleName(buf, sm.Family+"_sum", sm.Labels, "")
			buf = append(buf, ' ')
			buf = appendValue(buf, sm.Hist.Sum)
			buf = append(buf, '\n')
			buf = sampleName(buf, sm.Family+"_count", sm.Labels, "")
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, sm.Hist.Count, 10)
			buf = append(buf, '\n')
		} else {
			buf = sampleName(buf, sm.Family, sm.Labels, "")
			buf = append(buf, ' ')
			buf = appendValue(buf, sm.Value)
			buf = append(buf, '\n')
		}
		if len(buf) > 1<<16 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := w.Write(buf)
	return err
}

// metricsSchema names the JSON snapshot wire format.
const metricsSchema = "ellog-metrics/1"

// WriteJSON renders the snapshot as one deterministic JSON document
// (schema ellog-metrics/1); at is the loop clock at snapshot time.
func (s Snapshot) WriteJSON(w io.Writer, at sim.Time) error {
	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"schema":"`+metricsSchema+`","at_us":`...)
	buf = strconv.AppendInt(buf, int64(at), 10)
	buf = append(buf, `,"metrics":[`...)
	for i, sm := range s.Samples {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, sm.Name)
		buf = append(buf, `,"kind":`...)
		buf = strconv.AppendQuote(buf, sm.Kind)
		if sm.Hist != nil {
			buf = append(buf, `,"count":`...)
			buf = strconv.AppendUint(buf, sm.Hist.Count, 10)
			buf = append(buf, `,"sum":`...)
			buf = strconv.AppendFloat(buf, sm.Hist.Sum, 'g', -1, 64)
			buf = append(buf, `,"bounds":[`...)
			for j, b := range sm.Hist.Bounds {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendFloat(buf, b, 'g', -1, 64)
			}
			buf = append(buf, `],"counts":[`...)
			for j, c := range sm.Hist.Counts {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendUint(buf, c, 10)
			}
			buf = append(buf, ']')
		} else {
			buf = append(buf, `,"value":`...)
			buf = strconv.AppendFloat(buf, sm.Value, 'g', -1, 64)
		}
		buf = append(buf, '}')
		if len(buf) > 1<<16 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	buf = append(buf, "]}\n"...)
	_, err := w.Write(buf)
	return err
}

// --- exposition validation ----------------------------------------------

// histState tracks one histogram label-set's bucket sequence.
type histState struct {
	lastLE   float64
	lastCum  uint64
	sawInf   bool
	infCount uint64
	count    uint64
	sawCount bool
}

// ValidateExposition parses r as Prometheus text exposition (0.0.4) and
// returns the first conformance violation: malformed comment, sample or
// label syntax, a sample preceding its TYPE line, an unknown type, a
// negative counter, duplicate series, non-cumulative histogram buckets,
// a missing +Inf bucket, or _count disagreeing with the +Inf bucket.
// This is the check CI's scrape step and `eltrace -promcheck` run.
func ValidateExposition(r io.Reader) error {
	types := map[string]string{}
	seen := map[string]bool{}
	hists := map[string]map[string]*histState{} // family -> labelset(minus le) -> state
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			if rest == line {
				continue // free-form comment
			}
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(rest[len("HELP "):], " ", 2)
				if parts[0] == "" || !validMetricName(parts[0]) {
					return fmt.Errorf("line %d: malformed HELP line", lineNo)
				}
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.Fields(rest[len("TYPE "):])
				if len(parts) != 2 || !validMetricName(parts[0]) {
					return fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				switch parts[1] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, parts[1])
				}
				if _, dup := types[parts[0]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, parts[0])
				}
				types[parts[0]] = parts[1]
			default:
				// Plain comment; the format allows them anywhere.
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		family, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, name)
		}
		if typ == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, name, value)
		}
		if typ == "histogram" {
			if hists[family] == nil {
				hists[family] = map[string]*histState{}
			}
			rest, le, hasLE := splitLE(labels)
			st := hists[family][rest]
			if st == nil {
				st = &histState{lastLE: math.Inf(-1)}
				hists[family][rest] = st
			}
			switch suffix {
			case "_bucket":
				if !hasLE {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				bound, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				if bound <= st.lastLE {
					return fmt.Errorf("line %d: %s buckets out of order (le=%s)", lineNo, family, le)
				}
				if uint64(value) < st.lastCum {
					return fmt.Errorf("line %d: %s buckets not cumulative at le=%s", lineNo, family, le)
				}
				st.lastLE, st.lastCum = bound, uint64(value)
				if math.IsInf(bound, 1) {
					st.sawInf, st.infCount = true, uint64(value)
				}
			case "_count":
				st.count, st.sawCount = uint64(value), true
			case "_sum":
				// any float is fine
			default:
				return fmt.Errorf("line %d: bare sample %s of histogram family %s", lineNo, name, family)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for family, byLabels := range hists {
		for rest, st := range byLabels {
			where := family
			if rest != "" {
				where += "{" + rest + "}"
			}
			if !st.sawInf {
				return fmt.Errorf("histogram %s has no +Inf bucket", where)
			}
			if st.sawCount && st.count != st.infCount {
				return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", where, st.count, st.infCount)
			}
		}
	}
	return nil
}

func validMetricName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// parseSample splits a sample line into name, raw label block (without
// braces) and value, validating label syntax along the way.
func parseSample(line string) (name, labels string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[1:end]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// validateLabels checks a name="value" list: valid label names, quoted
// values, legal escapes.
func validateLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		lname := s[:eq]
		if !validMetricName(lname) || strings.ContainsRune(lname, ':') {
			return fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value after %q", lname)
		}
		j := 1
		for ; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				if j >= len(s) {
					return fmt.Errorf("dangling escape in label %q", lname)
				}
				switch s[j] {
				case '\\', '"', 'n':
				default:
					return fmt.Errorf("illegal escape \\%c in label %q", s[j], lname)
				}
				continue
			}
			if s[j] == '"' {
				break
			}
		}
		if j >= len(s) {
			return fmt.Errorf("unterminated label value for %q", lname)
		}
		s = s[j+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("missing comma after label %q", lname)
			}
			s = s[1:]
		}
	}
	return nil
}

// splitLE removes the le pair from a label block, returning the rest and
// the le value.
func splitLE(labels string) (rest, le string, ok bool) {
	parts := splitLabelPairs(labels)
	kept := make([]string, 0, len(parts))
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			le, ok = p[len(`le="`):len(p)-1], true
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le, ok
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q: %v", le, err)
	}
	return v, nil
}
