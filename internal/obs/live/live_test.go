package live

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ellog/internal/obs"
	"ellog/internal/sim"
)

// testRegistry builds a registry with one of everything, including a
// labelled family split across two series and a label value that needs
// escaping.
func testRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("ellog_commits_total", "")
	c.Add(41)
	c.Inc()
	g := reg.Gauge(`ellog_gen_used_blocks{gen="1"}`, "")
	g.Set(7)
	g0 := reg.Gauge(`ellog_gen_used_blocks{gen="0"}`, "")
	g0.Set(3)
	reg.Gauge(`ellog_test_weird{path="a\"b\\c"}`, "A label value exercising escapes.").Set(1)
	h := reg.Histogram("ellog_fsync_latency_ms", "", []float64{1, 5, 25})
	for _, v := range []float64{0.5, 0.5, 3, 100} {
		h.Observe(v)
	}
	return reg
}

func TestValueAtomicOps(t *testing.T) {
	var v Value
	v.Set(2.5)
	if v.Load() != 2.5 {
		t.Fatalf("Load = %v", v.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Add(1)
			}
		}()
	}
	wg.Wait()
	if v.Load() != 8002.5 {
		t.Fatalf("concurrent Add lost updates: %v", v.Load())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ellog_fsync_latency_ms", "", []float64{1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 2000 {
		t.Fatalf("Count = %d", s.Count)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != 2000 {
		t.Fatalf("bucket counts sum to %d", total)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := testRegistry()
	snap := reg.Snapshot()
	var names []string
	for _, s := range snap.Samples {
		names = append(names, s.Name)
	}
	for i := 1; i < len(names); i++ {
		a, _ := snap.Samples[i-1], snap.Samples[i]
		if a.Family > snap.Samples[i].Family ||
			(a.Family == snap.Samples[i].Family && a.Labels >= snap.Samples[i].Labels) {
			t.Fatalf("snapshot not sorted at %d: %v", i, names)
		}
	}
	if _, ok := snap.Get(`ellog_gen_used_blocks{gen="1"}`); !ok {
		t.Fatal("Get missed a labelled sample")
	}
	if snap.Value("ellog_commits_total") != 42 {
		t.Fatalf("Value = %v", snap.Value("ellog_commits_total"))
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ellog_commits_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Gauge("ellog_commits_total", "")
}

// TestExpositionConformance is the parser-based conformance test: the
// registry's own rendering must satisfy the validator, carry HELP/TYPE
// metadata for every canonical family, escape labels, and keep histogram
// buckets cumulative.
func TestExpositionConformance(t *testing.T) {
	reg := testRegistry()
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("own exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# HELP ellog_commits_total Committed transactions.",
		"# TYPE ellog_commits_total counter",
		"# TYPE ellog_gen_used_blocks gauge",
		"# TYPE ellog_fsync_latency_ms histogram",
		`ellog_gen_used_blocks{gen="0"} 3`,
		`ellog_test_weird{path="a\"b\\c"} 1`,
		`ellog_fsync_latency_ms_bucket{le="+Inf"} 4`,
		"ellog_fsync_latency_ms_count 4",
		"ellog_fsync_latency_ms_sum 104",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// TYPE must precede samples of its family.
	sc := bufio.NewScanner(strings.NewReader(text))
	sawType := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ellog_commits_total ") {
			sawType = true
		}
		if strings.HasPrefix(line, "ellog_commits_total ") && !sawType {
			t.Fatal("sample preceded its TYPE line")
		}
	}
	// Buckets must be cumulative (validator checks too; assert directly).
	var last uint64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "ellog_fsync_latency_ms_bucket") {
			var n uint64
			if _, err := fmtSscanTail(line, &n); err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if n < last {
				t.Fatalf("non-cumulative bucket in %q", line)
			}
			last = n
		}
	}
}

// TestExpositionGolden pins the full rendering byte for byte, so format
// drift is a conscious choice.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ellog_commits_total", "").Add(10)
	reg.Gauge(`ellog_gen_used_blocks{gen="0"}`, "").Set(4)
	h := reg.Histogram("ellog_fsync_latency_ms", "", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(7)
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ellog_commits_total Committed transactions.
# TYPE ellog_commits_total counter
ellog_commits_total 10
# HELP ellog_fsync_latency_ms Fsync latency of group-commit batches in milliseconds.
# TYPE ellog_fsync_latency_ms histogram
ellog_fsync_latency_ms_bucket{le="1"} 1
ellog_fsync_latency_ms_bucket{le="5"} 1
ellog_fsync_latency_ms_bucket{le="+Inf"} 2
ellog_fsync_latency_ms_sum 7.5
ellog_fsync_latency_ms_count 2
# HELP ellog_gen_used_blocks Blocks currently occupied in the generation.
# TYPE ellog_gen_used_blocks gauge
ellog_gen_used_blocks{gen="0"} 4
`
	if sb.String() != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}

	var jb strings.Builder
	if err := reg.Snapshot().WriteJSON(&jb, 1234); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"schema":"ellog-metrics/1","at_us":1234,"metrics":[` +
		`{"name":"ellog_commits_total","kind":"counter","value":10},` +
		`{"name":"ellog_fsync_latency_ms","kind":"histogram","count":2,"sum":7.5,"bounds":[1,5],"counts":[1,0,1]},` +
		`{"name":"ellog_gen_used_blocks{gen=\"0\"}","kind":"gauge","value":4}]}` + "\n"
	if jb.String() != wantJSON {
		t.Fatalf("JSON golden mismatch:\n--- got ---\n%s--- want ---\n%s", jb.String(), wantJSON)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "foo 1\n",
		"negative counter":    "# TYPE foo counter\nfoo -1\n",
		"bad type":            "# TYPE foo flimsy\nfoo 1\n",
		"bad name":            "# TYPE foo counter\n1foo 2\n",
		"duplicate series":    "# TYPE foo gauge\nfoo 1\nfoo 2\n",
		"bad label syntax":    "# TYPE foo gauge\nfoo{x=1} 2\n",
		"bad escape":          "# TYPE foo gauge\nfoo{x=\"a\\qb\"} 2\n",
		"unterminated labels": "# TYPE foo gauge\nfoo{x=\"a\" 2\n",
		"non-cumulative hist": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count != +Inf":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		"out-of-order le":     "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 1\n",
		"duplicate TYPE":      "# TYPE foo gauge\n# TYPE foo counter\nfoo 1\n",
		"malformed TYPE":      "# TYPE foo\nfoo 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
	// And a valid document with every feature passes.
	ok := "# plain comment\n# HELP foo Something.\n# TYPE foo counter\nfoo{a=\"x\\\"y\",b=\"z\"} 3\nfoo 1\n" +
		"# TYPE h histogram\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 9.5\nh_count 4\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestPollerBridgesSchemaProbes(t *testing.T) {
	var writes uint64
	commits := 0.0
	probes := []obs.NamedProbe{
		{Name: obs.MetricCommits, Kind: obs.KindCounter, Help: "", Fn: func() float64 { return commits }},
		{Name: obs.MetricLogWrites, Kind: obs.KindCounter, Help: "", Fn: func() float64 { return float64(writes) }},
		{Name: `ellog_gen_used_blocks{gen="0"}`, Kind: obs.KindGauge, Help: "", Fn: func() float64 { return 5 }},
	}
	reg := NewRegistry()
	p := NewPoller(reg, probes)
	p.Collect()
	if got := reg.Snapshot().Value(obs.MetricCommits); got != 0 {
		t.Fatalf("initial commits = %v", got)
	}
	commits, writes = 17, 4
	p.Collect()
	snap := reg.Snapshot()
	if snap.Value(obs.MetricCommits) != 17 || snap.Value(obs.MetricLogWrites) != 4 {
		t.Fatalf("poller did not track probes: %+v", snap.Samples)
	}
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("polled exposition invalid: %v", err)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := testRegistry()
	srv, err := Serve("127.0.0.1:0", reg, func() sim.Time { return 99 })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics body invalid: %v", err)
	}
	code, body = get("/metrics.json")
	if code != 200 || !strings.Contains(body, `"at_us":99`) {
		t.Fatalf("/metrics.json status %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index status %d", code)
	}
}

func TestWatchLine(t *testing.T) {
	reg := NewRegistry()
	commits := reg.Counter(obs.MetricCommits, "")
	bytes := reg.Counter(obs.MetricAppendedBytes, "")
	inflight := reg.Gauge(obs.MetricInflightBatches, "")
	fsync := reg.Histogram(obs.MetricFsyncLatencyMS, "", obs.FsyncLatencyBucketsMS)
	batch := reg.Histogram(obs.MetricBatchBytes, "", obs.BatchBytesBuckets)
	prev := reg.Snapshot()
	commits.Add(500)
	bytes.Add(2048 * 10)
	inflight.Set(2)
	for i := 0; i < 100; i++ {
		fsync.Observe(0.4)
		batch.Observe(8192)
	}
	fsync.Observe(40)
	cur := reg.Snapshot()
	line := WatchLine(prev, cur, 2)
	for _, want := range []string{"commits/s     250", "in-flight 2", "fsync p50/p99"} {
		if !strings.Contains(line, want) {
			t.Fatalf("watch line missing %q: %q", want, line)
		}
	}
	// p50 comes from the delta distribution: 0.4 ms lands in the 0.5 bucket.
	if !strings.Contains(line, "0.50/") {
		t.Fatalf("p50 not from delta buckets: %q", line)
	}
	killed := reg.Counter(obs.MetricKilled, "")
	killed.Add(3)
	if line := WatchLine(cur, reg.Snapshot(), 1); !strings.Contains(line, "KILLED 3") {
		t.Fatalf("killed not surfaced: %q", line)
	}
}

// fmtSscanTail parses the trailing integer of an exposition line.
func fmtSscanTail(line string, n *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseUint(line[i+1:])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var n uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		n = n*10 + uint64(s[i]-'0')
	}
	return n, nil
}
