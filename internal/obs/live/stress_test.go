package live

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentScrapeStress hammers the registry from writer
// goroutines while readers take Snapshots and scrape /metrics over HTTP,
// mirroring a real run: the device loop updating instruments while
// Prometheus scrapes. Run under -race this is the proof of the lock-free
// instrument design; without -race it still pins that concurrent scrapes
// see internally-consistent, parseable expositions and that no update is
// lost.
func TestRegistryConcurrentScrapeStress(t *testing.T) {
	const (
		writers = 8
		iters   = 2000
		readers = 4
	)
	reg := NewRegistry()
	counter := reg.Counter("ellog_stress_total", "")
	gauge := reg.Gauge("ellog_stress_inflight", "")
	hist := reg.Histogram("ellog_stress_latency_ms", "", []float64{1, 5, 25, 100})

	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				counter.Inc()
				gauge.Set(float64(w))
				hist.Observe(float64(i % 128))
			}
		}(w)
	}

	// Snapshot readers: every observed counter value must be a plausible
	// intermediate (monotonic wrt what this reader saw before, never past
	// the final total), and bucket counts must never exceed the count sum.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				v := snap.Value("ellog_stress_total")
				if v < last || v > writers*iters {
					t.Errorf("snapshot counter went backwards or overshot: %v after %v", v, last)
					return
				}
				last = v
				if s, ok := snap.Get("ellog_stress_latency_ms"); ok {
					var inBuckets uint64
					for _, c := range s.Hist.Counts {
						inBuckets += c
					}
					if inBuckets > s.Hist.Count {
						t.Errorf("histogram buckets (%d) exceed total count (%d)", inBuckets, s.Hist.Count)
						return
					}
				}
			}
		}()
	}

	// HTTP scrapers: every response under concurrency must be valid
	// Prometheus text exposition.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape failed: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("scrape read failed: %v", err)
					return
				}
				if err := ValidateExposition(strings.NewReader(string(body))); err != nil {
					t.Errorf("mid-stress exposition invalid: %v\n%s", err, body)
					return
				}
			}
		}()
	}

	// Writers finish first; then release the readers and join everyone.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Readers only exit on stop, so wait for the writers' final counter
	// value, stop the readers, then join everyone.
	for reg.Snapshot().Value("ellog_stress_total") < writers*iters {
	}
	close(stop)
	<-done

	if got := reg.Snapshot().Value("ellog_stress_total"); got != writers*iters {
		t.Fatalf("lost counter updates: %v, want %d", got, writers*iters)
	}
	if s, ok := reg.Snapshot().Get("ellog_stress_latency_ms"); !ok || s.Hist.Count != writers*iters {
		t.Fatalf("lost histogram observations: %+v", s.Hist)
	}
}
