// Package live is the wall-clock half of the observability layer: a
// lock-free metrics registry the real backend's goroutines update while
// HTTP handlers and the -watch dashboard read it concurrently. Metric
// names follow the canonical ellog_* schema in package obs, so a live
// snapshot from elreal and a probe dump from elsim describe the same
// series — the sim↔real bridge the sim-vs-real comparison joins on.
//
// Simulated runs never touch this package: it exists for real mode only,
// which is why the ellint wall-clock exemption covers it while the rest
// of internal/obs stays under the determinism contract.
package live

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ellog/internal/metrics"
	"ellog/internal/obs"
)

// Value is a float64 instrument updatable lock-free from any goroutine:
// the loop goroutine sets polled levels, the device's completion path
// bumps counters, HTTP handlers read — no locks anywhere.
type Value struct {
	bits atomic.Uint64
}

// Set stores v.
func (v *Value) Set(f float64) { v.bits.Store(math.Float64bits(f)) }

// Load returns the current value.
func (v *Value) Load() float64 { return math.Float64frombits(v.bits.Load()) }

// Add atomically adds d.
func (v *Value) Add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (v *Value) Inc() { v.Add(1) }

// Histogram is a fixed-bucket histogram with atomic counts: Observe is
// wait-free per bucket, Snapshot is a consistent-enough read for
// monitoring (bucket counts may trail count/sum by in-flight samples).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    Value
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot exports the current cumulative state as a fixed-bucket
// snapshot, the same shape metrics.Histogram.Snapshot produces.
func (h *Histogram) Snapshot() metrics.BucketSnapshot {
	s := metrics.BucketSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// item is one registered instrument; exactly one of val/hist is set.
type item struct {
	name   string // full series name, labels inline
	family string
	labels string
	kind   string // obs.KindCounter, obs.KindGauge, or "histogram"
	help   string
	val    *Value
	hist   *Histogram
}

// Registry holds the live instruments. The mutex guards registration
// only; reads and updates of registered instruments are atomic.
type Registry struct {
	mu     sync.Mutex
	items  []*item
	byName map[string]*item
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*item)}
}

func (r *Registry) register(name, kind, help string) *item {
	family, labels := obs.SplitName(name)
	if help == "" {
		help = obs.HelpFor(family)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("live: duplicate metric %q (%s)", name, prev.kind))
	}
	it := &item{name: name, family: family, labels: labels, kind: kind, help: help}
	r.items = append(r.items, it)
	r.byName[name] = it
	return it
}

// Counter registers a cumulative metric and returns its instrument. An
// empty help string falls back to the canonical schema help. Duplicate
// names panic. Counters expose Set as well as Add because real-mode
// sources include polled cumulative probes (the manager's commit count),
// not just event-driven increments.
func (r *Registry) Counter(name, help string) *Value {
	it := r.register(name, obs.KindCounter, help)
	it.val = &Value{}
	return it.val
}

// Gauge registers a level metric and returns its instrument.
func (r *Registry) Gauge(name, help string) *Value {
	it := r.register(name, obs.KindGauge, help)
	it.val = &Value{}
	return it.val
}

// Histogram registers a fixed-bucket histogram over the given ascending
// bounds and returns its instrument. The bounds slice is referenced.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	it := r.register(name, "histogram", help)
	it.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return it.hist
}

// Sample is one metric's state in a snapshot.
type Sample struct {
	Name   string
	Family string
	Labels string
	Kind   string
	Help   string
	Value  float64                 // scalars
	Hist   *metrics.BucketSnapshot // histograms
}

// Snapshot is a point-in-time read of every registered metric, sorted by
// (family, labels) so renderings are deterministic regardless of
// registration order.
type Snapshot struct {
	Samples []Sample
}

// Snapshot reads every instrument. Safe to call from any goroutine.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	items := make([]*item, len(r.items))
	copy(items, r.items)
	r.mu.Unlock()
	samples := make([]Sample, 0, len(items))
	for _, it := range items {
		s := Sample{Name: it.name, Family: it.family, Labels: it.labels, Kind: it.kind, Help: it.help}
		if it.hist != nil {
			h := it.hist.Snapshot()
			s.Hist = &h
		} else {
			s.Value = it.val.Load()
		}
		samples = append(samples, s)
	}
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Family != samples[j].Family {
			return samples[i].Family < samples[j].Family
		}
		return samples[i].Labels < samples[j].Labels
	})
	return Snapshot{Samples: samples}
}

// Get returns the sample with the given full name.
func (s Snapshot) Get(name string) (Sample, bool) {
	for _, sm := range s.Samples {
		if sm.Name == name {
			return sm, true
		}
	}
	return Sample{}, false
}

// Value returns a scalar metric's value, 0 when absent.
func (s Snapshot) Value(name string) float64 {
	sm, _ := s.Get(name)
	return sm.Value
}
