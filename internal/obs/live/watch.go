package live

import (
	"fmt"

	"ellog/internal/obs"
)

// WatchLine renders one -watch dashboard line from two registry
// snapshots dt seconds apart: commit rate, fsync latency p50/p99 over
// the interval, mean batch payload, and in-flight batches. A pure
// function of its inputs so it is testable without a clock; the caller
// owns the ticker.
func WatchLine(prev, cur Snapshot, dt float64) string {
	if dt <= 0 {
		dt = 1
	}
	commitsPS := (cur.Value(obs.MetricCommits) - prev.Value(obs.MetricCommits)) / dt
	bytesPS := (cur.Value(obs.MetricAppendedBytes) - prev.Value(obs.MetricAppendedBytes)) / dt

	var p50, p99 float64
	if c, ok := cur.Get(obs.MetricFsyncLatencyMS); ok && c.Hist != nil {
		h := *c.Hist
		if p, ok := prev.Get(obs.MetricFsyncLatencyMS); ok && p.Hist != nil {
			h = h.Sub(*p.Hist)
		}
		p50, p99 = h.Quantile(0.50), h.Quantile(0.99)
	}

	var batchKiB float64
	if c, ok := cur.Get(obs.MetricBatchBytes); ok && c.Hist != nil {
		h := *c.Hist
		if p, ok := prev.Get(obs.MetricBatchBytes); ok && p.Hist != nil {
			h = h.Sub(*p.Hist)
		}
		batchKiB = h.Mean() / 1024
	}

	line := fmt.Sprintf("commits/s %7.0f | appended %7.0f KiB/s | fsync p50/p99 %6.2f/%6.2f ms | batch %6.1f KiB | in-flight %d",
		commitsPS, bytesPS/1024, p50, p99, batchKiB, int(cur.Value(obs.MetricInflightBatches)))
	if killed := cur.Value(obs.MetricKilled); killed > 0 {
		line += fmt.Sprintf(" | KILLED %d", int(killed))
	}
	return line
}
