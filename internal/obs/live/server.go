package live

import (
	"net"
	"net/http"
	"net/http/pprof"

	"ellog/internal/sim"
)

// Handler builds the metrics HTTP handler: /metrics serves Prometheus
// text exposition, /metrics.json the JSON snapshot (stamped with the
// loop clock from now), and /debug/pprof/* the standard Go profiles.
func Handler(reg *Registry, now func() sim.Time) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var at sim.Time
		if now != nil {
			at = now()
		}
		_ = reg.Snapshot().WriteJSON(w, at)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the metrics endpoint on addr (":0" picks a free port) and
// returns immediately; requests are handled on background goroutines.
// now supplies the loop clock for JSON snapshots and may be nil.
func Serve(addr string, reg *Registry, now func() sim.Time) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg, now)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:41231".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
