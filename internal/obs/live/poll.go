package live

import "ellog/internal/obs"

// Poller bridges the canonical read-only probe table onto live
// instruments: each schema probe gets a registry scalar of its kind, and
// Collect copies current probe values into them. Collect must run on the
// loop goroutine (probes read loop-owned state); readers see the values
// atomically.
type Poller struct {
	probes []obs.NamedProbe
	vals   []*Value
}

// NewPoller registers every probe on the registry and returns the
// poller. Counter probes are cumulative sources, so their instruments
// are Set — not Add — on each collection.
func NewPoller(reg *Registry, probes []obs.NamedProbe) *Poller {
	p := &Poller{probes: probes, vals: make([]*Value, len(probes))}
	for i, pr := range probes {
		if pr.Kind == obs.KindCounter {
			p.vals[i] = reg.Counter(pr.Name, pr.Help)
		} else {
			p.vals[i] = reg.Gauge(pr.Name, pr.Help)
		}
	}
	return p
}

// Collect copies every probe's current value into its instrument.
func (p *Poller) Collect() {
	for i, pr := range p.probes {
		p.vals[i].Set(pr.Fn())
	}
}
