package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/trace"
	"ellog/internal/workload"
)

// obsBase is a small EL run that commits and fully flushes plenty of
// transactions within a couple of simulated seconds.
func obsBase(seed uint64) harness.Config {
	return harness.Config{
		Seed: seed,
		LM: core.Params{
			Mode:     core.ModeEphemeral,
			GenSizes: []int{6, 8},
		},
		Flush: core.FlushConfig{Drives: 2, Transfer: 5 * sim.Millisecond, NumObjects: 1000},
		// The long type keeps records live past generation 0's turnover so
		// forwarding (EvMove, gen-1 activity) shows up in every trace.
		Workload: workload.Config{
			Mix: workload.Mix{
				{Name: "short", Prob: 0.8, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 200},
				{Name: "long", Prob: 0.2, Lifetime: 1500 * sim.Millisecond, NumRecords: 3, RecordSize: 200},
			},
			ArrivalRate: 120,
			Runtime:     2 * sim.Second,
			NumObjects:  1000,
		},
	}
}

// capturedRun executes obsBase past its runtime (so flushes drain) with a
// capture sink and a sampler attached, returning everything tests need.
func capturedRun(t *testing.T, seed uint64) (*harness.Live, *Capture, *Sampler) {
	t.Helper()
	cfg := obsBase(seed)
	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capture := &Capture{}
	live.Setup.LM.SetTracer(capture)
	s := NewSampler(live.Setup.Eng, 50*sim.Millisecond, 64)
	RegisterStandardProbes(s, live.Setup)
	s.Start()
	live.Setup.Eng.Run(cfg.Workload.Runtime + 10*sim.Second)
	if len(capture.Events) == 0 {
		t.Fatal("run emitted no trace events")
	}
	return live, capture, s
}

// TestTracedRunStatsByteIdentical is the contract the whole layer hangs
// on (and the check CI's observability job runs): attaching a capture
// sink and a ticking sampler must not change a run's results at all.
func TestTracedRunStatsByteIdentical(t *testing.T) {
	cfg := obsBase(3)
	plain, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	live, err := harness.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capture := &Capture{}
	live.Setup.LM.SetTracer(capture)
	s := NewSampler(live.Setup.Eng, 50*sim.Millisecond, 64)
	RegisterStandardProbes(s, live.Setup)
	s.Start()
	live.Setup.Eng.Run(cfg.Workload.Runtime)
	traced := harness.Result{LM: live.Setup.LM.Stats(), Workload: live.Gen.Stats()}

	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("observability changed the run's results:\nplain  %+v\ntraced %+v", plain, traced)
	}
	if len(capture.Events) == 0 || s.Ticks() == 0 {
		t.Fatal("trace or sampler was not actually live")
	}
}

func TestStandardProbeNames(t *testing.T) {
	_, _, s := capturedRun(t, 1)
	for _, name := range []string{
		`ellog_gen_used_blocks{gen="0"}`, `ellog_gen_size_blocks{gen="1"}`,
		`ellog_gen_live_records{gen="0"}`,
		"ellog_lot_entries", "ellog_ltt_entries", "ellog_mem_bytes",
		"ellog_log_blocks", "ellog_commits_total", "ellog_appended_bytes_total",
		"ellog_write_retries_total", "ellog_killed_total",
		"ellog_log_writes_total", "ellog_flush_backlog",
		"ellog_flushes_total", "ellog_forced_flushes_total",
	} {
		sr, ok := s.Find(name)
		if !ok || sr.Name != name {
			t.Fatalf("standard probe %q missing (got %q)", name, sr.Name)
		}
	}
	// Cumulative counters must be nondecreasing across points.
	writes, _ := s.Find("ellog_log_writes_total")
	for i := 1; i < len(writes.Points); i++ {
		if writes.Points[i].Min < writes.Points[i-1].Max {
			t.Fatalf("ellog_log_writes_total not monotonic at point %d", i)
		}
	}
	if last := writes.Points[len(writes.Points)-1]; last.Max == 0 {
		t.Fatal("ellog_log_writes_total probe never saw a block write")
	}
}

func TestMetricNameHelpers(t *testing.T) {
	if got := MetricName("ellog_gen_used_blocks", "gen", "0"); got != `ellog_gen_used_blocks{gen="0"}` {
		t.Fatalf("MetricName = %q", got)
	}
	if got := MetricName("x"); got != "x" {
		t.Fatalf("bare MetricName = %q", got)
	}
	if got := MetricName("x", "k", `a"b\c`+"\n"); got != `x{k="a\"b\\c\n"}` {
		t.Fatalf("escaped MetricName = %q", got)
	}
	if got := WithLabel("ellog_lot_entries", "lp", "2"); got != `ellog_lot_entries{lp="2"}` {
		t.Fatalf("WithLabel bare = %q", got)
	}
	if got := WithLabel(`ellog_gen_used_blocks{gen="0"}`, "lp", "2"); got != `ellog_gen_used_blocks{gen="0",lp="2"}` {
		t.Fatalf("WithLabel labelled = %q", got)
	}
	fam, labels := SplitName(`ellog_gen_used_blocks{gen="0",lp="2"}`)
	if fam != "ellog_gen_used_blocks" || labels != `gen="0",lp="2"` {
		t.Fatalf("SplitName = %q, %q", fam, labels)
	}
	if fam, labels := SplitName("ellog_lot_entries"); fam != "ellog_lot_entries" || labels != "" {
		t.Fatalf("SplitName bare = %q, %q", fam, labels)
	}
}

func TestExplainReconstructsLifecycle(t *testing.T) {
	_, capture, _ := capturedRun(t, 2)
	ix := BuildIndex(capture.Events)
	if ix.NumTx() == 0 {
		t.Fatal("no transactions in trace")
	}
	lives := ix.Lifetimes()
	if len(lives) != ix.NumTx() {
		t.Fatalf("Lifetimes returned %d of %d transactions", len(lives), ix.NumTx())
	}
	var full *TxLife
	for i := range lives {
		l := &lives[i]
		if l.HasT1 && l.HasT2 && l.HasT3 && l.HasT4 && l.HasT5 && !l.Killed {
			full = l
			break
		}
	}
	if full == nil {
		t.Fatal("no transaction reconstructed with all five epochs")
	}
	if !(full.T1 <= full.T2 && full.T2 <= full.T3 && full.T3 <= full.T4 && full.T4 <= full.T5) {
		t.Fatalf("epochs out of order: t1=%v t2=%v t3=%v t4=%v t5=%v",
			full.T1, full.T2, full.T3, full.T4, full.T5)
	}
	if len(full.Records) == 0 {
		t.Fatal("complete transaction has no data records")
	}
	for _, r := range full.Records {
		if !r.Flushed {
			t.Fatalf("t5 set but record lsn %d not flushed", r.LSN)
		}
		if r.FlushAt > full.T5 {
			t.Fatalf("record flushed at %v after t5=%v", r.FlushAt, full.T5)
		}
	}

	out, ok := ix.FormatTx(full.Tx)
	if !ok {
		t.Fatal("FormatTx failed for a known transaction")
	}
	for _, want := range []string{"t1 BEGIN appended", "t4 COMMIT durable", "t5 fully flushed", "total t1→t5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTx output missing %q:\n%s", want, out)
		}
	}
	obj := full.Records[0].Obj
	oout, ok := ix.FormatObj(obj)
	if !ok || !strings.Contains(oout, "append") {
		t.Fatalf("FormatObj(%d) = %q, %v", obj, oout, ok)
	}
	if _, ok := ix.Tx(logrec.TxID(1 << 60)); ok {
		t.Fatal("unknown transaction reconstructed")
	}

	sum := FormatSummary(capture.Events)
	for _, want := range []string{"events", "append", "seal", "gen 0:"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	if FormatSummary(nil) != "empty trace\n" {
		t.Fatal("empty summary wrong")
	}
}

func TestObserverEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var decoded [][]trace.Event
	for _, format := range []string{"jsonl", "binary"} {
		cfg := obsBase(4)
		live, err := harness.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tracePath := filepath.Join(dir, "trace."+format)
		probesPath := filepath.Join(dir, "probes."+format+".json")
		o, err := New(live.Setup, Config{
			TracePath: tracePath, TraceFormat: format,
			ProbesPath: probesPath, SampleInterval: 50 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		live.Setup.LM.SetTracer(o.Sink())
		live.Setup.Eng.Run(cfg.Workload.Runtime)
		if err := o.Close(); err != nil {
			t.Fatal(err)
		}
		events, err := ReadTraceFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, events)
		if _, series, err := ReadProbesFile(probesPath); err != nil || len(series) == 0 {
			t.Fatalf("probes file: %d series, err %v", len(series), err)
		}
	}
	// Same run, two wire formats: identical event streams.
	if !reflect.DeepEqual(decoded[0], decoded[1]) {
		t.Fatalf("jsonl and binary traces differ (%d vs %d events)", len(decoded[0]), len(decoded[1]))
	}
}

func TestObserverDisarmed(t *testing.T) {
	o, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("disarmed config built an observer")
	}
	// A nil observer must be fully inert.
	if o.Sink() != nil || o.Sampler() != nil || o.Close() != nil {
		t.Fatal("nil observer methods not inert")
	}
	if (Config{TracePath: "x"}).Armed() != true || (Config{}).Armed() {
		t.Fatal("Armed wrong")
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live sinks must be nil (hot-path gate)")
	}
	ring := trace.NewRing(4)
	if got := Multi(nil, ring); got != trace.Sink(ring) {
		t.Fatal("single live sink must come back unwrapped")
	}
	capture := &Capture{}
	m := Multi(ring, capture)
	e := trace.Event{At: 5, Kind: trace.EvSeal, Gen: 0, N: 2}
	m.Emit(e)
	if len(capture.Events) != 1 || capture.Events[0] != e {
		t.Fatalf("fan-out missed capture: %+v", capture.Events)
	}
	if ring.Total() != 1 {
		t.Fatalf("fan-out missed ring: %d", ring.Total())
	}
}

// perfettoDoc decodes the exported JSON for structural assertions.
type perfettoDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestPerfettoExport(t *testing.T) {
	_, capture, s := capturedRun(t, 5)
	var buf bytes.Buffer
	st, err := WritePerfetto(&buf, capture.Events, s.Series(), PerfettoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != st.Events {
		t.Fatalf("decoded %d events, stats claim %d", len(doc.TraceEvents), st.Events)
	}
	if st.WriteSpans == 0 || st.TxSpans == 0 || st.Counters == 0 || st.Flows == 0 {
		t.Fatalf("expected spans, flows and counters: %+v", st)
	}

	// One named track per generation, plus flush array and manager.
	tracks := map[string]bool{}
	spans := map[string]int{} // write-span id -> open count
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
		if e.Name == "block write" {
			switch e.Ph {
			case "b":
				spans[e.ID]++
			case "e":
				spans[e.ID]--
			}
		}
	}
	for _, want := range []string{"gen 0", "gen 1", "flush array", "tx lifecycles"} {
		if !tracks[want] {
			t.Fatalf("missing track %q in %v", want, tracks)
		}
	}
	for id, open := range spans {
		if open != 0 {
			t.Fatalf("write span %s unbalanced (%+d)", id, open)
		}
	}
}

func TestPerfettoCapsAreReported(t *testing.T) {
	evs := []trace.Event{
		{At: 1, Kind: trace.EvAppend, Gen: 0, Tx: 1, LSN: 1, N: int(logrec.KindBegin)},
		{At: 2, Kind: trace.EvAppend, Gen: 0, Tx: 2, LSN: 2, N: int(logrec.KindBegin)},
		{At: 3, Kind: trace.EvAppend, Gen: 0, Tx: 3, LSN: 3, N: int(logrec.KindBegin)},
		{At: 4, Kind: trace.EvMove, Gen: 0, Tx: 1, LSN: 1, N: 1},
		{At: 5, Kind: trace.EvMove, Gen: 0, Tx: 2, LSN: 2, N: 1},
		{At: 6, Kind: trace.EvMove, Gen: 1, Tx: 3, LSN: 3, N: 1},
	}
	var buf bytes.Buffer
	st, err := WritePerfetto(&buf, evs, nil, PerfettoOptions{MaxTx: 2, MaxFlows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.TxSpans != 2 || st.DroppedTx != 1 {
		t.Fatalf("tx cap: %+v", st)
	}
	if st.Flows != 2 || st.DroppedFlows != 1 {
		t.Fatalf("flow cap: %+v", st)
	}
	msg := st.String()
	if !strings.Contains(msg, "dropped") {
		t.Fatalf("caps silent in %q", msg)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("capped export is not valid JSON")
	}
}
