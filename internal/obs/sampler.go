package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"ellog/internal/sim"
)

// Probe reads one instantaneous level from a component. Probes must be
// cheap (no allocation) and side-effect free: the sampler calls every
// registered probe once per cadence tick, on the engine's thread.
// An alias, not a defined type, so components can register against a
// locally declared `Register(string, func() float64)` interface without
// importing this package.
type Probe = func() float64

// Point is one downsampled bucket of a sampled series: the min, max and
// mean of N consecutive raw samples, stamped with the simulated time of
// the bucket's first sample.
type Point struct {
	At   sim.Time `json:"at"`
	Min  float64  `json:"min"`
	Max  float64  `json:"max"`
	Mean float64  `json:"mean"`
	N    int      `json:"n"`
}

// Series is one probe's bounded history.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// bucket accumulates raw samples until a stride's worth closes a Point.
type bucket struct {
	at       sim.Time
	min, max float64
	sum      float64
	n        int
}

func (b *bucket) add(at sim.Time, v float64) {
	if b.n == 0 {
		b.at = at
		b.min, b.max = v, v
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
	}
	b.sum += v
	b.n++
}

func (b *bucket) point() Point {
	return Point{At: b.at, Min: b.min, Max: b.max, Mean: b.sum / float64(b.n), N: b.n}
}

type probeSeries struct {
	name   string
	fn     Probe
	points []Point
	acc    bucket
}

// Sampler polls registered probes on a fixed simulated-time cadence and
// retains each probe's history as a memory-bounded, downsampling time
// series. When a series hits its point budget, adjacent points merge
// pairwise and the sampling stride doubles, so an arbitrarily long run
// costs a fixed amount of memory while keeping min/max envelopes exact.
type Sampler struct {
	clk       sim.Clock
	interval  sim.Time
	maxPoints int
	stride    int // raw samples folded into one point (doubles on overflow)
	series    []*probeSeries
	ticks     uint64
	started   bool
}

// NewSampler builds a sampler ticking every interval, keeping at most
// maxPoints points per series (0 selects the default 512). Explicit
// budgets are clamped to an even number of at least 4 so pair-merging
// always halves the series exactly. The clock can be a simulation engine
// or the real backend's wall-clock loop — both satisfy sim.Clock, which
// is exactly what makes sim and real probe series comparable.
func NewSampler(clk sim.Clock, interval sim.Time, maxPoints int) *Sampler {
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	if maxPoints == 0 {
		maxPoints = 512
	}
	if maxPoints < 4 {
		maxPoints = 4
	}
	if maxPoints%2 != 0 {
		maxPoints++
	}
	return &Sampler{clk: clk, interval: interval, maxPoints: maxPoints, stride: 1}
}

// Interval returns the sampling cadence.
func (s *Sampler) Interval() sim.Time { return s.interval }

// MaxPoints returns the per-series point budget.
func (s *Sampler) MaxPoints() int { return s.maxPoints }

// Ticks reports how many cadence ticks have fired.
func (s *Sampler) Ticks() uint64 { return s.ticks }

// Register adds a named probe. Registration order is the report order;
// registering after Start is allowed (the probe joins at the next tick).
// Duplicate names panic — they would produce indistinguishable series.
func (s *Sampler) Register(name string, fn Probe) {
	for _, ps := range s.series {
		if ps.name == name {
			panic(fmt.Sprintf("obs: duplicate probe %q", name))
		}
	}
	s.series = append(s.series, &probeSeries{name: name, fn: fn})
}

// Start schedules the cadence. Ticks only read component state and
// consume no randomness, so an armed sampler does not perturb simulation
// results (events shift engine sequence numbers, never relative order).
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.clk.After(s.interval, s.tick)
}

func (s *Sampler) tick() {
	now := s.clk.Now()
	s.ticks++
	for _, ps := range s.series {
		ps.acc.add(now, ps.fn())
		if ps.acc.n >= s.stride {
			ps.points = append(ps.points, ps.acc.point())
			ps.acc = bucket{}
		}
	}
	// All series share the stride and tick together, so when one hits the
	// budget they all do (modulo late registration, handled per series).
	s.compact()
	s.clk.After(s.interval, s.tick)
}

// compact halves any series at its budget by merging adjacent point pairs
// and doubles the stride so future buckets match the new resolution.
func (s *Sampler) compact() {
	full := false
	for _, ps := range s.series {
		if len(ps.points) >= s.maxPoints {
			full = true
			break
		}
	}
	if !full {
		return
	}
	s.stride *= 2
	for _, ps := range s.series {
		ps.points = mergePairs(ps.points)
	}
}

// mergePairs folds points two at a time; an odd trailing point survives
// as-is (its N records that it covers fewer samples).
func mergePairs(pts []Point) []Point {
	out := pts[:0]
	i := 0
	for ; i+1 < len(pts); i += 2 {
		a, b := pts[i], pts[i+1]
		m := Point{At: a.At, Min: a.Min, Max: a.Max, N: a.N + b.N}
		if b.Min < m.Min {
			m.Min = b.Min
		}
		if b.Max > m.Max {
			m.Max = b.Max
		}
		m.Mean = (a.Mean*float64(a.N) + b.Mean*float64(b.N)) / float64(m.N)
		out = append(out, m)
	}
	if i < len(pts) {
		out = append(out, pts[i])
	}
	return out
}

// Series snapshots every probe's history in registration order. An
// in-progress bucket is included as a final (partial) point so the
// snapshot never loses the newest samples.
func (s *Sampler) Series() []Series {
	out := make([]Series, 0, len(s.series))
	for _, ps := range s.series {
		pts := make([]Point, len(ps.points), len(ps.points)+1)
		copy(pts, ps.points)
		if ps.acc.n > 0 {
			pts = append(pts, ps.acc.point())
		}
		out = append(out, Series{Name: ps.name, Points: pts})
	}
	return out
}

// Find returns the snapshot of the series whose name contains substr
// (first match in registration order), or false.
func (s *Sampler) Find(substr string) (Series, bool) {
	for _, sr := range s.Series() {
		if substr == "" || containsFold(sr.Name, substr) {
			return sr, true
		}
	}
	return Series{}, false
}

func containsFold(haystack, needle string) bool {
	if len(needle) > len(haystack) {
		return false
	}
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		ok := true
		for j := 0; j < len(needle); j++ {
			if lower(haystack[i+j]) != lower(needle[j]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// probesSchema names the probe-dump wire format.
const probesSchema = "ellog-probes/1"

// WriteJSON writes the sampler's snapshot as a single deterministic JSON
// document (schema ellog-probes/1): series in registration order, fields
// hand-encoded so output never depends on map iteration.
func (s *Sampler) WriteJSON(w io.Writer) error {
	return WriteSeriesJSON(w, s.interval, s.Series())
}

// WriteSeriesJSON encodes a series snapshot in the ellog-probes/1 format.
func WriteSeriesJSON(w io.Writer, interval sim.Time, series []Series) error {
	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"schema":"`+probesSchema+`","interval_us":`...)
	buf = strconv.AppendInt(buf, int64(interval), 10)
	buf = append(buf, `,"series":[`...)
	for i, sr := range series {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, sr.Name)
		buf = append(buf, `,"points":[`...)
		for j, p := range sr.Points {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"at":`...)
			buf = strconv.AppendInt(buf, int64(p.At), 10)
			buf = append(buf, `,"min":`...)
			buf = appendFloat(buf, p.Min)
			buf = append(buf, `,"max":`...)
			buf = appendFloat(buf, p.Max)
			buf = append(buf, `,"mean":`...)
			buf = appendFloat(buf, p.Mean)
			buf = append(buf, `,"n":`...)
			buf = strconv.AppendInt(buf, int64(p.N), 10)
			buf = append(buf, '}')
			if len(buf) > 1<<16 {
				if _, err := w.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, "]}\n"...)
	_, err := w.Write(buf)
	return err
}

func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// probesDoc mirrors the ellog-probes/1 document for decoding.
type probesDoc struct {
	Schema     string   `json:"schema"`
	IntervalUS int64    `json:"interval_us"`
	Series     []Series `json:"series"`
}

// ReadProbesFile loads an ellog-probes/1 snapshot written by WriteJSON.
func ReadProbesFile(path string) (sim.Time, []Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	var doc probesDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != probesSchema {
		return 0, nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, probesSchema)
	}
	return sim.Time(doc.IntervalUS), doc.Series, nil
}

// SortedNames returns the registered probe names, sorted — handy for
// tests and summaries.
func (s *Sampler) SortedNames() []string {
	names := make([]string, len(s.series))
	for i, ps := range s.series {
		names[i] = ps.name
	}
	sort.Strings(names)
	return names
}
