package obs

import (
	"fmt"
	"sort"
	"strings"

	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// Index is a queryable view over a recorded event stream: transactions
// in order of appearance, with flush completions (which carry no TxID on
// the wire) joined back to their transactions through the LSNs their
// appends established.
type Index struct {
	Events  []trace.Event
	TxOrder []logrec.TxID

	byTx   map[logrec.TxID][]int
	byObj  map[logrec.OID][]int
	lsnTx  map[logrec.LSN]logrec.TxID
	lsnObj map[logrec.LSN]logrec.OID
}

// BuildIndex scans a trace once and builds the lookup tables.
func BuildIndex(events []trace.Event) *Index {
	ix := &Index{
		Events: events,
		byTx:   make(map[logrec.TxID][]int),
		byObj:  make(map[logrec.OID][]int),
		lsnTx:  make(map[logrec.LSN]logrec.TxID),
		lsnObj: make(map[logrec.LSN]logrec.OID),
	}
	for i, e := range events {
		tx := e.Tx
		if e.Kind == trace.EvAppend && e.LSN != 0 {
			ix.lsnTx[e.LSN] = e.Tx
			ix.lsnObj[e.LSN] = e.Obj
		}
		// Flush completions carry Obj+LSN but no Tx; join via the append.
		if tx == 0 && (e.Kind == trace.EvFlush || e.Kind == trace.EvForceFlush) {
			tx = ix.lsnTx[e.LSN]
		}
		if tx != 0 {
			if _, seen := ix.byTx[tx]; !seen {
				ix.TxOrder = append(ix.TxOrder, tx)
			}
			ix.byTx[tx] = append(ix.byTx[tx], i)
		}
		if e.Obj != 0 || e.Kind == trace.EvFlush || e.Kind == trace.EvForceFlush {
			ix.byObj[e.Obj] = append(ix.byObj[e.Obj], i)
		}
	}
	return ix
}

// NumTx reports how many distinct transactions appear in the trace.
func (ix *Index) NumTx() int { return len(ix.TxOrder) }

// Move is one record-level generation hop.
type Move struct {
	At       sim.Time
	From, To int
}

// RecordLife reconstructs one data record's journey through the log.
type RecordLife struct {
	LSN      logrec.LSN
	Obj      logrec.OID
	AppendAt sim.Time
	Gen      int // generation first appended into
	Moves    []Move
	Flushed  bool
	Forced   bool // flushed out of band (random I/O at a head)
	FlushAt  sim.Time
}

// TxLife is one transaction's reconstructed lifecycle in the paper's
// epoch vocabulary: t1 BEGIN appended, t2 last data record appended, t3
// COMMIT appended, t4 COMMIT durable (the commit point), t5 all updates
// flushed to the stable database. Every epoch has a presence flag — t=0
// is a legitimate simulated time, not a sentinel.
type TxLife struct {
	Tx                                logrec.TxID
	T1, T2, T3, T4, T5                sim.Time
	HasT1, HasT2, HasT3, HasT4, HasT5 bool
	BeginGen                          int
	Records                           []RecordLife
	TxMoves                           []Move // moves of the BEGIN/COMMIT record
	Killed                            bool
	KilledAt                          sim.Time
}

// Tx reconstructs a transaction's lifecycle, reporting false if the
// trace never mentions it.
func (ix *Index) Tx(id logrec.TxID) (TxLife, bool) {
	idxs, ok := ix.byTx[id]
	if !ok {
		return TxLife{}, false
	}
	life := TxLife{Tx: id}
	// Indexes, not pointers: appending to life.Records may reallocate it.
	recByLSN := make(map[logrec.LSN]int)
	txLSNs := make(map[logrec.LSN]bool) // BEGIN/COMMIT record LSNs
	for _, i := range idxs {
		e := ix.Events[i]
		switch e.Kind {
		case trace.EvAppend:
			switch logrec.Kind(e.N) {
			case logrec.KindBegin:
				life.T1, life.HasT1 = e.At, true
				life.BeginGen = e.Gen
				txLSNs[e.LSN] = true
			case logrec.KindCommit:
				life.T3, life.HasT3 = e.At, true
				txLSNs[e.LSN] = true
			default: // data
				life.T2, life.HasT2 = e.At, true
				life.Records = append(life.Records, RecordLife{
					LSN: e.LSN, Obj: e.Obj, AppendAt: e.At, Gen: e.Gen,
				})
				recByLSN[e.LSN] = len(life.Records) - 1
			}
		case trace.EvMove:
			mv := Move{At: e.At, From: e.Gen, To: e.N}
			if ri, ok := recByLSN[e.LSN]; ok {
				life.Records[ri].Moves = append(life.Records[ri].Moves, mv)
			} else if txLSNs[e.LSN] {
				life.TxMoves = append(life.TxMoves, mv)
			}
		case trace.EvCommit:
			life.T4, life.HasT4 = e.At, true
		case trace.EvFlush, trace.EvForceFlush:
			if ri, ok := recByLSN[e.LSN]; ok {
				r := &life.Records[ri]
				r.Flushed = true
				r.FlushAt = e.At
				if e.Kind == trace.EvForceFlush {
					r.Forced = true
				}
			}
		case trace.EvKill:
			life.Killed = true
			life.KilledAt = e.At
		}
	}
	// t5: the transaction is fully flushed once every update landed.
	if life.HasT4 {
		all := true
		t5 := life.T4
		for i := range life.Records {
			r := &life.Records[i]
			if !r.Flushed {
				all = false
				break
			}
			if r.FlushAt > t5 {
				t5 = r.FlushAt
			}
		}
		if all {
			life.T5, life.HasT5 = t5, true
		}
	}
	return life, true
}

// Lifetimes reconstructs every transaction in appearance order.
func (ix *Index) Lifetimes() []TxLife {
	out := make([]TxLife, 0, len(ix.TxOrder))
	for _, id := range ix.TxOrder {
		if life, ok := ix.Tx(id); ok {
			out = append(out, life)
		}
	}
	return out
}

func fmtDelta(d sim.Time) string { return fmt.Sprintf("+%v", d) }

// FormatTx renders one transaction's lifecycle with derived latencies.
func (ix *Index) FormatTx(id logrec.TxID) (string, bool) {
	life, ok := ix.Tx(id)
	if !ok {
		return "", false
	}
	var b strings.Builder
	state := "incomplete"
	switch {
	case life.Killed:
		state = fmt.Sprintf("KILLED at %v", life.KilledAt)
	case life.HasT5:
		state = "committed and fully flushed"
	case life.HasT4:
		state = "committed (updates not all flushed in trace)"
	}
	fmt.Fprintf(&b, "tx %d: %d data records, %s\n", life.Tx, len(life.Records), state)
	if life.HasT1 {
		fmt.Fprintf(&b, "  t1 BEGIN appended      %-12v gen %d\n", life.T1, life.BeginGen)
	}
	if life.HasT2 {
		fmt.Fprintf(&b, "  t2 last data appended  %-12v", life.T2)
		if life.HasT1 {
			fmt.Fprintf(&b, " %s", fmtDelta(life.T2-life.T1))
		}
		b.WriteByte('\n')
	}
	if life.HasT3 {
		fmt.Fprintf(&b, "  t3 COMMIT appended     %-12v", life.T3)
		if life.HasT2 {
			fmt.Fprintf(&b, " %s", fmtDelta(life.T3-life.T2))
		} else if life.HasT1 {
			fmt.Fprintf(&b, " %s", fmtDelta(life.T3-life.T1))
		}
		b.WriteByte('\n')
	}
	if life.HasT4 {
		fmt.Fprintf(&b, "  t4 COMMIT durable      %-12v", life.T4)
		if life.HasT3 {
			fmt.Fprintf(&b, " %s group-commit delay", fmtDelta(life.T4-life.T3))
		}
		b.WriteByte('\n')
	}
	if life.HasT5 {
		fmt.Fprintf(&b, "  t5 fully flushed       %-12v", life.T5)
		if life.HasT4 {
			fmt.Fprintf(&b, " %s", fmtDelta(life.T5-life.T4))
		}
		b.WriteByte('\n')
	}
	if life.HasT1 && life.HasT5 {
		fmt.Fprintf(&b, "  total t1→t5            %v\n", life.T5-life.T1)
	}
	for _, mv := range life.TxMoves {
		fmt.Fprintf(&b, "  tx record moved gen %d→%d at %v\n", mv.From, mv.To, mv.At)
	}
	for _, r := range life.Records {
		fmt.Fprintf(&b, "  lsn %d obj %d: appended %v gen %d", r.LSN, r.Obj, r.AppendAt, r.Gen)
		for _, mv := range r.Moves {
			if mv.From == mv.To {
				fmt.Fprintf(&b, ", recirc gen %d at %v", mv.From, mv.At)
			} else {
				fmt.Fprintf(&b, ", moved gen %d→%d at %v", mv.From, mv.To, mv.At)
			}
		}
		switch {
		case r.Forced:
			fmt.Fprintf(&b, ", FORCE-flushed at %v", r.FlushAt)
		case r.Flushed:
			fmt.Fprintf(&b, ", flushed at %v", r.FlushAt)
		default:
			b.WriteString(", never flushed in trace")
		}
		b.WriteByte('\n')
	}
	return b.String(), true
}

// FormatObj renders every recorded event touching one object, in order:
// the object's version history as the log saw it.
func (ix *Index) FormatObj(oid logrec.OID) (string, bool) {
	idxs, ok := ix.byObj[oid]
	if !ok {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "obj %d: %d events\n", oid, len(idxs))
	for _, i := range idxs {
		e := ix.Events[i]
		switch e.Kind {
		case trace.EvAppend:
			fmt.Fprintf(&b, "  %v append lsn %d by tx %d (gen %d)\n", e.At, e.LSN, e.Tx, e.Gen)
		case trace.EvMove:
			if e.Gen == e.N {
				fmt.Fprintf(&b, "  %v recirc lsn %d in gen %d\n", e.At, e.LSN, e.Gen)
			} else {
				fmt.Fprintf(&b, "  %v move   lsn %d gen %d→%d\n", e.At, e.LSN, e.Gen, e.N)
			}
		case trace.EvFlush:
			fmt.Fprintf(&b, "  %v flush  lsn %d (tx %d)\n", e.At, e.LSN, ix.lsnTx[e.LSN])
		case trace.EvForceFlush:
			fmt.Fprintf(&b, "  %v FORCE  lsn %d (tx %d)\n", e.At, e.LSN, ix.lsnTx[e.LSN])
		default:
			fmt.Fprintf(&b, "  %v\n", e)
		}
	}
	return b.String(), true
}

// FormatSummary renders per-kind counts, the trace's time span, and
// per-generation block-write activity.
func FormatSummary(events []trace.Event) string {
	if len(events) == 0 {
		return "empty trace\n"
	}
	counts := make(map[trace.Kind]uint64)
	sealsPerGen := make(map[int]uint64)
	for _, e := range events {
		counts[e.Kind]++
		if e.Kind == trace.EvSeal {
			sealsPerGen[e.Gen]++
		}
	}
	first, last := events[0].At, events[len(events)-1].At
	var b strings.Builder
	fmt.Fprintf(&b, "%d events, %v – %v (span %v)\n", len(events), first, last, last-first)
	for k := trace.EvAppend; k <= trace.EvMove; k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s %10d", k, counts[k])
		if span := last - first; span > 0 {
			fmt.Fprintf(&b, "  (%.1f/s)", float64(counts[k])/span.Seconds())
		}
		b.WriteByte('\n')
	}
	gens := make([]int, 0, len(sealsPerGen))
	for g := range sealsPerGen {
		gens = append(gens, g)
	}
	sort.Ints(gens)
	for _, g := range gens {
		fmt.Fprintf(&b, "  gen %d: %d block writes\n", g, sealsPerGen[g])
	}
	return b.String()
}
