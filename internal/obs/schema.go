package obs

import (
	"strconv"
	"strings"

	"ellog/internal/core"
	"ellog/internal/flushdisk"
)

// This file is the canonical ellog_* metric schema shared by both
// execution modes. A metric's full name carries its label set inline
// (`ellog_gen_used_blocks{gen="0"}`), which works unchanged as a flat
// probe-series name in simulated runs and as a Prometheus sample name in
// real runs — the sim↔real bridge is purely a naming convention, so
// `elbench -exp simvreal` can join the two sides by string equality.

// Metric kinds, used for Prometheus TYPE lines and to decide how the live
// registry polls a probe (counters are cumulative, gauges are levels).
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
)

// Canonical names of the real-mode-only metrics (the simulated device has
// no fsync; these exist only in the live registry).
const (
	MetricFsyncLatencyMS  = "ellog_fsync_latency_ms"
	MetricBatchBlocks     = "ellog_group_commit_batch_blocks"
	MetricBatchBytes      = "ellog_group_commit_batch_bytes"
	MetricBatches         = "ellog_batches_total"
	MetricFsyncs          = "ellog_fsyncs_total"
	MetricPipelineStalls  = "ellog_pipeline_stalls_total"
	MetricInflightBatches = "ellog_inflight_batches"
	MetricTornFrames      = "ellog_torn_frames_total"
	MetricSalvagedRecords = "ellog_salvaged_records_total"
	MetricUptimeSeconds   = "ellog_uptime_seconds"
	MetricAppendedBytes   = "ellog_appended_bytes_total"
	MetricCommits         = "ellog_commits_total"
	MetricLogWrites       = "ellog_log_writes_total"
	MetricLogBlocks       = "ellog_log_blocks"
	MetricWriteRetries    = "ellog_write_retries_total"
	MetricKilled          = "ellog_killed_total"
	MetricLOTEntries      = "ellog_lot_entries"
	MetricLTTEntries      = "ellog_ltt_entries"
	MetricMemBytes        = "ellog_mem_bytes"
	MetricFlushBacklog    = "ellog_flush_backlog"
	MetricFlushes         = "ellog_flushes_total"
	MetricForcedFlushes   = "ellog_forced_flushes_total"
	MetricGenUsedBlocks   = "ellog_gen_used_blocks"
	MetricGenSizeBlocks   = "ellog_gen_size_blocks"
	MetricGenLiveRecords  = "ellog_gen_live_records"
)

// Bucket bounds for the live registry's fixed-bucket histograms. Shared
// here so elreal's JSON report, the /metrics endpoint and tests agree.
var (
	// FsyncLatencyBucketsMS spans tmpfs (tens of µs) through spinning
	// rust with a congested queue (hundreds of ms).
	FsyncLatencyBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}
	// BatchBlocksBuckets covers group-commit batch sizes in slots.
	BatchBlocksBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	// BatchBytesBuckets covers batch payload sizes.
	BatchBytesBuckets = []float64{4096, 16384, 65536, 262144, 1048576, 4194304}
)

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// MetricName renders base plus key/value label pairs as a full series
// name: MetricName("x", "gen", "0") == `x{gen="0"}`. Pairs must come in
// key order; values are escaped. With no pairs the base is returned bare.
func MetricName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WithLabel adds one key="value" pair to a full series name, keeping the
// name parseable: `x` → `x{k="v"}`, `x{a="1"}` → `x{a="1",k="v"}`. The
// caller is responsible for keeping labels in a deterministic order
// (PDES adds lp= last).
func WithLabel(name, key, val string) string {
	esc := key + `="` + escapeLabelValue(val) + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + esc + "}"
	}
	return name + "{" + esc + "}"
}

// SplitName splits a full series name into its metric family (the bare
// base name) and the label block (`gen="0"` — empty when unlabelled).
func SplitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	if !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// NamedProbe is one entry of the canonical schema: a full series name,
// the metric kind, help text for the exposition format, and the cheap
// read-only probe producing the current value.
type NamedProbe struct {
	Name string
	Kind string
	Help string
	Fn   Probe
}

// ProbeTargets names the components the standard schema reads. Dev is an
// interface so both the simulated block device and the real file device
// plug in; LM and Flush are the identical concrete types in both modes.
type ProbeTargets struct {
	LM    *core.Manager
	Dev   interface{ Writes() uint64 }
	Flush *flushdisk.Array
}

// HelpFor returns the canonical help string for a metric family, used by
// the live registry so sim and real expositions describe series
// identically. Unknown families get an empty string.
func HelpFor(family string) string {
	switch family {
	case MetricGenUsedBlocks:
		return "Blocks currently occupied in the generation."
	case MetricGenSizeBlocks:
		return "Configured capacity of the generation in blocks."
	case MetricGenLiveRecords:
		return "Non-garbage records tracked in the generation."
	case MetricLOTEntries:
		return "Log object table entries."
	case MetricLTTEntries:
		return "Log transaction table entries."
	case MetricMemBytes:
		return "Main memory for the LOT and LTT (paper's model)."
	case MetricLogBlocks:
		return "Configured disk space for the whole log in blocks (min-space gauge)."
	case MetricLogWrites:
		return "Completed block writes to the log device."
	case MetricCommits:
		return "Committed transactions."
	case MetricAppendedBytes:
		return "Logical bytes appended to the log."
	case MetricWriteRetries:
		return "Reissued block writes after transient errors."
	case MetricKilled:
		return "Transactions killed for log space."
	case MetricFlushBacklog:
		return "Objects waiting in the flush array."
	case MetricFlushes:
		return "Completed object flushes."
	case MetricForcedFlushes:
		return "Flushes forced by log-space pressure."
	case MetricFsyncLatencyMS:
		return "Fsync latency of group-commit batches in milliseconds."
	case MetricBatchBlocks:
		return "Group-commit batch size in slots."
	case MetricBatchBytes:
		return "Group-commit batch size in bytes."
	case MetricBatches:
		return "Group-commit batches written."
	case MetricFsyncs:
		return "Fsync calls issued."
	case MetricPipelineStalls:
		return "Dispatches that waited on the in-flight fsync."
	case MetricInflightBatches:
		return "Batches dispatched but not yet durable."
	case MetricTornFrames:
		return "Torn frames detected on recovery or append."
	case MetricSalvagedRecords:
		return "Records salvaged from torn blocks."
	case MetricUptimeSeconds:
		return "Wall-clock seconds since the loop started."
	}
	return ""
}

// StandardProbes returns the canonical probe table over the given
// targets, in deterministic order: per-generation series first
// (generation-major), then tables and totals, then the devices. Every
// name here is exactly what a real-mode /metrics exposition serves.
func StandardProbes(t ProbeTargets) []NamedProbe {
	lm, dev, flush := t.LM, t.Dev, t.Flush
	var probes []NamedProbe
	for i := 0; i < lm.NumGenerations(); i++ {
		gi := i
		gen := strconv.Itoa(gi)
		probes = append(probes,
			NamedProbe{MetricName(MetricGenUsedBlocks, "gen", gen), KindGauge, HelpFor(MetricGenUsedBlocks),
				func() float64 { return float64(lm.GenUsed(gi)) }},
			NamedProbe{MetricName(MetricGenSizeBlocks, "gen", gen), KindGauge, HelpFor(MetricGenSizeBlocks),
				func() float64 { return float64(lm.GenSize(gi)) }},
			NamedProbe{MetricName(MetricGenLiveRecords, "gen", gen), KindGauge, HelpFor(MetricGenLiveRecords),
				func() float64 { return float64(lm.GenLiveCells(gi)) }},
		)
	}
	probes = append(probes,
		NamedProbe{MetricLOTEntries, KindGauge, HelpFor(MetricLOTEntries),
			func() float64 { return float64(lm.LOTLen()) }},
		NamedProbe{MetricLTTEntries, KindGauge, HelpFor(MetricLTTEntries),
			func() float64 { return float64(lm.LTTLen()) }},
		NamedProbe{MetricMemBytes, KindGauge, HelpFor(MetricMemBytes), lm.MemBytes},
		NamedProbe{MetricLogBlocks, KindGauge, HelpFor(MetricLogBlocks),
			func() float64 { return float64(lm.TotalBlocks()) }},
		NamedProbe{MetricCommits, KindCounter, HelpFor(MetricCommits),
			func() float64 { return float64(lm.CommitCount()) }},
		NamedProbe{MetricAppendedBytes, KindCounter, HelpFor(MetricAppendedBytes),
			func() float64 { return float64(lm.AppendedByteCount()) }},
		NamedProbe{MetricWriteRetries, KindCounter, HelpFor(MetricWriteRetries),
			func() float64 { return float64(lm.WriteRetryCount()) }},
		NamedProbe{MetricKilled, KindCounter, HelpFor(MetricKilled),
			func() float64 { return float64(lm.KilledCount()) }},
	)
	if dev != nil {
		probes = append(probes, NamedProbe{MetricLogWrites, KindCounter, HelpFor(MetricLogWrites),
			func() float64 { return float64(dev.Writes()) }})
	}
	if flush != nil {
		probes = append(probes,
			NamedProbe{MetricFlushBacklog, KindGauge, HelpFor(MetricFlushBacklog),
				func() float64 { return float64(flush.PendingCount()) }},
			NamedProbe{MetricFlushes, KindCounter, HelpFor(MetricFlushes),
				func() float64 { return float64(flush.Flushes()) }},
			NamedProbe{MetricForcedFlushes, KindCounter, HelpFor(MetricForcedFlushes),
				func() float64 { return float64(flush.Forced()) }},
		)
	}
	return probes
}

// RegisterProbes registers every schema probe on a sampler.
func RegisterProbes(s *Sampler, probes []NamedProbe) {
	for _, p := range probes {
		s.Register(p.Name, p.Fn)
	}
}
