// Package obs is the simulated-time observability layer: a probe sampler
// turning component gauges into memory-bounded time series, streaming
// trace sinks (JSONL and compact binary) that persist the full event
// stream of a run, a Chrome trace-event / Perfetto exporter, and a
// transaction-lifecycle explainer reconstructing the paper's t1…t5
// epochs from a recorded trace.
//
// Everything here follows the fault subsystem's contract: hooks are
// nil-gated, probes only read state, and sampler ticks consume no
// randomness — an observability-off run is byte-identical to one that
// never linked this package, and an observability-on run produces
// byte-identical core.Stats to the same run untraced.
package obs

import (
	"fmt"
	"os"

	"ellog/internal/core"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// Config arms the observability layer. The zero value is fully disarmed.
// It lives outside harness.Config on purpose: runner.Pool memoizes runs
// by the harness configuration, and observability must never change a
// run's identity.
type Config struct {
	// SampleInterval is the probe cadence (default 100 ms when probes are
	// armed via ProbesPath).
	SampleInterval sim.Time
	// MaxPoints bounds each sampled series (default 512 points).
	MaxPoints int
	// TracePath, when set, streams every trace event to this file.
	TracePath string
	// TraceFormat selects "jsonl" (default) or "binary" for TracePath.
	TraceFormat string
	// ProbesPath, when set, samples standard probes and writes the series
	// snapshot to this file at Close.
	ProbesPath string
}

// Armed reports whether any observability output is requested.
func (c Config) Armed() bool { return c.TracePath != "" || c.ProbesPath != "" }

// Observer owns an armed run's observability state: the streaming sink
// (if any) and the probe sampler (if any). Close flushes both outputs.
type Observer struct {
	cfg     Config
	sampler *Sampler
	sink    trace.Sink
	flush   func() error
	file    *os.File
}

// New arms observability on an assembled setup per cfg. With a disarmed
// cfg it returns (nil, nil), and a nil *Observer's methods are safe: no
// sink, no sampler, Close is a no-op — callers need no branching.
func New(setup *core.Setup, cfg Config) (*Observer, error) {
	if !cfg.Armed() {
		return nil, nil
	}
	o := &Observer{cfg: cfg}
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: trace output: %w", err)
		}
		o.file = f
		switch cfg.TraceFormat {
		case "", "jsonl":
			s := NewJSONLSink(f)
			o.sink, o.flush = s, s.Flush
		case "binary":
			s := NewBinarySink(f)
			o.sink, o.flush = s, s.Flush
		default:
			f.Close()
			return nil, fmt.Errorf("obs: unknown trace format %q (want jsonl or binary)", cfg.TraceFormat)
		}
	}
	if cfg.ProbesPath != "" {
		o.sampler = NewSampler(setup.Eng, cfg.SampleInterval, cfg.MaxPoints)
		RegisterStandardProbes(o.sampler, setup)
		o.sampler.Start()
	}
	return o, nil
}

// Sink returns the streaming trace sink, nil when streaming is off (or
// o is nil). Compose it with other sinks via Multi.
func (o *Observer) Sink() trace.Sink {
	if o == nil {
		return nil
	}
	return o.sink
}

// Sampler returns the probe sampler, nil when sampling is off.
func (o *Observer) Sampler() *Sampler {
	if o == nil {
		return nil
	}
	return o.sampler
}

// Close flushes the trace stream and writes the probe snapshot. Safe on
// nil and idempotent enough for defer+explicit use.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	var first error
	if o.flush != nil {
		if err := o.flush(); err != nil && first == nil {
			first = err
		}
		o.flush = nil
	}
	if o.file != nil {
		if err := o.file.Close(); err != nil && first == nil {
			first = err
		}
		o.file = nil
	}
	if o.sampler != nil && o.cfg.ProbesPath != "" {
		f, err := os.Create(o.cfg.ProbesPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			if err := o.sampler.WriteJSON(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		o.sampler = nil
	}
	return first
}

// RegisterStandardProbes wires every level the paper's evaluation tracks
// under the canonical ellog_* schema: per-generation occupancy, size and
// live records, LOT/LTT/memory, commit and byte counters, log block
// writes, and the flush array's backlog and completions. Registration
// order is deterministic (generation-major, then tables, then devices) so
// probe dumps diff cleanly across runs, and every name matches what a
// real-mode /metrics endpoint serves.
func RegisterStandardProbes(s *Sampler, setup *core.Setup) {
	RegisterProbes(s, StandardProbes(ProbeTargets{LM: setup.LM, Dev: setup.Dev, Flush: setup.Flush}))
}

// multiSink fans one event out to several sinks in order.
type multiSink []trace.Sink

// Emit implements trace.Sink.
func (m multiSink) Emit(e trace.Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi composes sinks, dropping nils: no sinks → nil (so the manager's
// nil gate stays closed and the hot path pays nothing), one sink → that
// sink unwrapped, several → a fan-out.
func Multi(sinks ...trace.Sink) trace.Sink {
	live := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// Capture is an unbounded in-memory sink — the campaign/chaos harnesses
// use it to hold a failing run's full event stream for the JSONL dump.
type Capture struct {
	Events []trace.Event
}

// Emit implements trace.Sink.
func (c *Capture) Emit(e trace.Event) { c.Events = append(c.Events, e) }
