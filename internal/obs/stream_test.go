package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ellog/internal/sim"
	"ellog/internal/trace"
)

// wireEvents exercises every kind plus the field edge cases: zero
// tx/obj/lsn/n (omitted on the JSONL wire), gen -1, OID 0, and repeated
// timestamps (zero binary deltas).
func wireEvents() []trace.Event {
	var evs []trace.Event
	at := sim.Time(0)
	for k := trace.EvAppend; k <= trace.EvMove; k++ {
		evs = append(evs, trace.Event{
			At: at, Kind: k, Gen: int(k) % 3, Tx: 7, Obj: 123456, LSN: 42, N: 3,
		})
		at += 17 * sim.Millisecond
	}
	evs = append(evs,
		trace.Event{At: at, Kind: trace.EvSeal, Gen: -1},
		trace.Event{At: at, Kind: trace.EvAppend, Gen: 0, Tx: 1, Obj: 0, LSN: 1, N: 1},
		trace.Event{At: at, Kind: trace.EvCommit, Gen: 1, Tx: 1 << 40},
	)
	return evs
}

func TestJSONLRoundTrip(t *testing.T) {
	want := wireEvents()
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, e := range want {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"`+TraceSchema+`"}`+"\n") {
		t.Fatalf("missing schema header: %q", buf.String()[:40])
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	want := wireEvents()
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	for _, e := range want {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// The compact format should beat JSONL by a wide margin.
	if buf.Len() > 30*len(want) {
		t.Fatalf("binary encoding is %d bytes for %d events", buf.Len(), len(want))
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadTraceFileAutoDetects(t *testing.T) {
	want := wireEvents()
	dir := t.TempDir()

	jpath := filepath.Join(dir, "t.jsonl")
	if err := WriteJSONLFile(jpath, want); err != nil {
		t.Fatal(err)
	}
	bpath := filepath.Join(dir, "t.bin")
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	for _, e := range want {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bpath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{jpath, bpath} {
		got, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: decoded events differ", path)
		}
	}
}

func TestReadJSONLStrictness(t *testing.T) {
	for name, in := range map[string]string{
		"empty":          "",
		"missing header": `{"at":1,"kind":"seal","gen":0}` + "\n",
		"wrong schema":   `{"schema":"other/1"}` + "\n",
		"unknown kind":   `{"schema":"ellog-trace/1"}` + "\n" + `{"at":1,"kind":"warp","gen":0}` + "\n",
		"malformed line": `{"schema":"ellog-trace/1"}` + "\n" + `{"at":` + "\n",
		"second header":  `{"schema":"ellog-trace/1"}` + "\n" + `{"schema":"ellog-trace/1"}` + "\n",
	} {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid magic, then an out-of-range kind.
	var buf bytes.Buffer
	buf.WriteString("ellogbin1\n")
	buf.WriteByte(0xff)
	buf.WriteByte(0x01)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("invalid kind accepted")
	}
}
