package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ellog/internal/logrec"
	"ellog/internal/trace"
)

// PerfettoOptions tunes the export volume.
type PerfettoOptions struct {
	// MaxTx caps transaction lifecycle spans (first N transactions by
	// appearance; 0 means the default 300). Perfetto handles large traces
	// but tens of thousands of async spans drown the timeline.
	MaxTx int
	// MaxFlows caps record-move flow arrows (0 means the default 2000).
	MaxFlows int
}

// PerfettoStats reports what the export contained — including what was
// dropped by the volume caps, so truncation is never silent.
type PerfettoStats struct {
	Events       int // trace-event JSON objects written
	WriteSpans   int // block-write b/e span pairs
	TxSpans      int // transaction lifecycle spans
	DroppedTx    int // transactions beyond MaxTx
	Flows        int // record-move flow arrows
	DroppedFlows int // moves beyond MaxFlows
	Counters     int // counter sample events
}

// Process/track layout of the export. Chrome trace-event pids/tids are
// arbitrary integers given names by metadata events.
const (
	pidLog = 1 // log device: one thread per generation + flush array
	pidTx  = 2 // transaction lifecycle spans
)

// teEvent is one Chrome trace-event JSON object. Field order is fixed by
// the struct, so output is deterministic.
type teEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoWriter streams trace-event objects as a JSON array.
type perfettoWriter struct {
	w     *bufio.Writer
	first bool
	n     int
	err   error
}

func newPerfettoWriter(w io.Writer) *perfettoWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	pw := &perfettoWriter{w: bw, first: true}
	_, pw.err = bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return pw
}

func (pw *perfettoWriter) add(e teEvent) {
	if pw.err != nil {
		return
	}
	if !pw.first {
		if pw.err = pw.w.WriteByte(','); pw.err != nil {
			return
		}
	}
	pw.first = false
	var b []byte
	b, pw.err = json.Marshal(e)
	if pw.err != nil {
		return
	}
	_, pw.err = pw.w.Write(b)
	pw.n++
}

func (pw *perfettoWriter) finish() error {
	if pw.err != nil {
		return pw.err
	}
	if _, err := pw.w.WriteString("]}\n"); err != nil {
		return err
	}
	return pw.w.Flush()
}

// WritePerfetto exports a recorded event stream (plus optional sampled
// series rendered as counter tracks) as Chrome trace-event JSON that
// Perfetto (ui.perfetto.dev) loads directly. Layout: one track per
// generation carrying block-write spans and that generation's instants,
// a flush-array track, flow arrows for record forwarding/recirculation,
// and async spans on a second process for transaction lifetimes
// (BEGIN → COMMIT-durable → fully-flushed, the paper's t1…t5).
func WritePerfetto(w io.Writer, events []trace.Event, series []Series, opts PerfettoOptions) (PerfettoStats, error) {
	if opts.MaxTx == 0 {
		opts.MaxTx = 300
	}
	if opts.MaxFlows == 0 {
		opts.MaxFlows = 2000
	}
	var st PerfettoStats
	pw := newPerfettoWriter(w)

	// Discover the generation count so tracks exist even for quiet gens.
	numGens := 0
	for _, e := range events {
		if e.Gen+1 > numGens {
			numGens = e.Gen + 1
		}
	}
	tidFlush := numGens + 1
	tidMgr := numGens + 2

	// Track names. Metadata events carry ts 0.
	meta := func(pid, tid int, key, name string) {
		pw.add(teEvent{Name: key, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
	}
	meta(pidLog, 0, "process_name", "log")
	for g := 0; g < numGens; g++ {
		meta(pidLog, g+1, "thread_name", fmt.Sprintf("gen %d", g))
	}
	meta(pidLog, tidFlush, "thread_name", "flush array")
	meta(pidLog, tidMgr, "thread_name", "manager")
	meta(pidTx, 0, "process_name", "transactions")
	meta(pidTx, 1, "thread_name", "tx lifecycles")

	// Transaction span bookkeeping: first MaxTx transactions by BEGIN
	// appearance get a lifecycle span; everyone else is counted dropped.
	txOpen := make(map[logrec.TxID]bool)
	txSeen := make(map[logrec.TxID]bool)
	txID := func(tx logrec.TxID) string { return fmt.Sprintf("tx%d", tx) }

	// Block-write spans: seals and durables on one generation form a FIFO
	// (the device completes same-latency writes in issue order), so match
	// them with a per-gen sequence counter.
	sealSeq := make([]int, numGens)
	durSeq := make([]int, numGens)

	instant := func(e trace.Event, tid int, name string, args map[string]any) {
		pw.add(teEvent{Name: name, Ph: "i", Ts: int64(e.At), Pid: pidLog, Tid: tid, S: "t", Args: args})
	}

	flowSeq := 0
	for _, e := range events {
		switch e.Kind {
		case trace.EvSeal:
			if e.Gen >= 0 && e.Gen < numGens {
				sealSeq[e.Gen]++
				pw.add(teEvent{Name: "block write", Ph: "b", Ts: int64(e.At), Pid: pidLog, Tid: e.Gen + 1,
					Cat: "write", ID: fmt.Sprintf("w%d-%d", e.Gen, sealSeq[e.Gen]),
					Args: map[string]any{"records": e.N}})
			}
		case trace.EvDurable:
			if e.Gen >= 0 && e.Gen < numGens && durSeq[e.Gen] < sealSeq[e.Gen] {
				durSeq[e.Gen]++
				pw.add(teEvent{Name: "block write", Ph: "e", Ts: int64(e.At), Pid: pidLog, Tid: e.Gen + 1,
					Cat: "write", ID: fmt.Sprintf("w%d-%d", e.Gen, durSeq[e.Gen])})
				st.WriteSpans++
			}
		case trace.EvMove:
			if st.Flows >= opts.MaxFlows {
				st.DroppedFlows++
				break
			}
			flowSeq++
			st.Flows++
			id := fmt.Sprintf("mv%d", flowSeq)
			name := "forward"
			if e.Gen == e.N {
				name = "recirculate"
			}
			pw.add(teEvent{Name: name, Ph: "s", Ts: int64(e.At), Pid: pidLog, Tid: e.Gen + 1, Cat: "move", ID: id,
				Args: map[string]any{"lsn": uint64(e.LSN), "tx": uint64(e.Tx)}})
			pw.add(teEvent{Name: name, Ph: "f", BP: "e", Ts: int64(e.At), Pid: pidLog, Tid: e.N + 1, Cat: "move", ID: id})
		case trace.EvDiscard:
			instant(e, e.Gen+1, "discard", nil)
		case trace.EvResize:
			instant(e, e.Gen+1, "resize", map[string]any{"delta": e.N})
		case trace.EvForceFlush:
			instant(e, tidFlush, "force-flush", map[string]any{"obj": uint64(e.Obj), "lsn": uint64(e.LSN)})
		case trace.EvFlush:
			instant(e, tidFlush, "flush", map[string]any{"obj": uint64(e.Obj), "lsn": uint64(e.LSN)})
		case trace.EvKill:
			instant(e, tidMgr, fmt.Sprintf("kill tx %d", e.Tx), nil)
		case trace.EvFault:
			instant(e, tidMgr, "fault", map[string]any{"kind": e.N})
		case trace.EvRetry:
			instant(e, e.Gen+1, "retry", map[string]any{"attempt": e.N})
		case trace.EvAppend:
			if logrec.Kind(e.N) != logrec.KindBegin {
				break
			}
			if !txSeen[e.Tx] {
				txSeen[e.Tx] = true
				if st.TxSpans < opts.MaxTx {
					st.TxSpans++
					txOpen[e.Tx] = true
					pw.add(teEvent{Name: fmt.Sprintf("tx %d", e.Tx), Ph: "b", Ts: int64(e.At), Pid: pidTx, Tid: 1,
						Cat: "tx", ID: txID(e.Tx), Args: map[string]any{"gen": e.Gen}})
				} else {
					st.DroppedTx++
				}
			}
		case trace.EvCommit:
			if txOpen[e.Tx] {
				pw.add(teEvent{Name: "commit durable", Ph: "n", Ts: int64(e.At), Pid: pidTx, Tid: 1,
					Cat: "tx", ID: txID(e.Tx)})
			}
		}
	}

	// Close transaction spans at their t5 (fully flushed), or at the last
	// event mentioning them, so no span dangles past the trace.
	ix := BuildIndex(events)
	for _, tx := range ix.TxOrder {
		if !txOpen[tx] {
			continue
		}
		life, _ := ix.Tx(tx)
		end := life.T1
		complete := false
		switch {
		case life.HasT5:
			end, complete = life.T5, true
		case life.Killed:
			end = life.KilledAt
		default:
			for _, i := range ix.byTx[tx] {
				if at := events[i].At; at > end {
					end = at
				}
			}
		}
		args := map[string]any{"complete": complete}
		if life.Killed {
			args["killed"] = true
		}
		pw.add(teEvent{Name: fmt.Sprintf("tx %d", tx), Ph: "e", Ts: int64(end), Pid: pidTx, Tid: 1,
			Cat: "tx", ID: txID(tx), Args: args})
	}

	// Sampled series become counter tracks on the log process.
	for _, sr := range series {
		for _, p := range sr.Points {
			pw.add(teEvent{Name: sr.Name, Ph: "C", Ts: int64(p.At), Pid: pidLog,
				Args: map[string]any{"value": p.Mean}})
			st.Counters++
		}
	}

	err := pw.finish()
	st.Events = pw.n
	return st, err
}

// String summarizes an export.
func (s PerfettoStats) String() string {
	out := fmt.Sprintf("%d trace events: %d write spans, %d tx spans, %d flows, %d counter samples",
		s.Events, s.WriteSpans, s.TxSpans, s.Flows, s.Counters)
	if s.DroppedTx > 0 {
		out += fmt.Sprintf(" (%d tx beyond -max-tx dropped)", s.DroppedTx)
	}
	if s.DroppedFlows > 0 {
		out += fmt.Sprintf(" (%d moves beyond flow cap dropped)", s.DroppedFlows)
	}
	return out
}
